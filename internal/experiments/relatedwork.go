package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// newArrivalRNG builds the arrival-process random stream.
func newArrivalRNG(seed uint64) *xrand.Source { return xrand.New(seed, 0xa77) }

// RelatedWorkResult quantifies Section 8's space-vs-time-sharing contrast:
// how much affinity matters under quantum-driven time sharing (the domain
// of Squillante & Lazowska, Mogul & Borg) versus under the paper's space
// sharing.
type RelatedWorkResult struct {
	// Rows, one per policy: mean response time, total cache-miss stall
	// time, reallocations, and %affinity summed over the mix's jobs.
	Rows []RelatedWorkRow
	// TimeSharingAffinityGain is the fractional response-time improvement
	// affinity buys under time sharing (RR vs Aff).
	TimeSharingAffinityGain float64
	// SpaceSharingAffinityGain is the same for space sharing
	// (Dynamic vs Dyn-Aff).
	SpaceSharingAffinityGain float64
	// TimeSharingMissGain and SpaceSharingMissGain are the fractional
	// reductions in cache-miss stall time affinity buys in each domain —
	// the mechanism behind the response-time effect, and the quantity on
	// which the Section-8 contrast is sharpest.
	TimeSharingMissGain  float64
	SpaceSharingMissGain float64
}

// RelatedWorkRow is one policy's aggregate outcome.
type RelatedWorkRow struct {
	Policy        string
	MeanRT        float64
	MissSec       float64
	Reallocations int
	PctAffinity   float64
}

// RelatedWork runs workload mix #5 under four policies — time sharing with
// and without affinity, and space sharing with and without affinity — and
// measures how much affinity helps in each domain. The paper's Section 8
// explains why time-sharing studies found affinity important while this
// paper did not; this experiment demonstrates the mechanism directly. It
// is RelatedWorkCtx without cancellation.
func RelatedWork(opts Options) (*RelatedWorkResult, error) {
	return RelatedWorkCtx(context.Background(), opts)
}

// RelatedWorkCtx is RelatedWork with cancellation: a cancelled ctx stops
// scheduling new simulation cells promptly and returns ctx's error.
func RelatedWorkCtx(ctx context.Context, opts Options) (*RelatedWorkResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	mix, err := workload.MixByNumber(5)
	if err != nil {
		return nil, err
	}
	policies := relatedWorkPolicies()
	// Fan the (policy, replication) cells out; idx = pi*R + rep.
	R := opts.Replications
	runs := make([]sched.Result, len(policies)*R)
	err = parallel.ForEach(ctx, opts.Workers, len(runs), func(ctx context.Context, idx int) error {
		rep := idx % R
		polName := policies[idx/R]
		seed := parallel.CellSeed(opts.Seed, uint64(rep))
		pol, ok := core.ByName(polName)
		if !ok {
			return fmt.Errorf("experiments: unknown policy %q", polName)
		}
		r, err := runSim(sched.Config{
			Machine: opts.Machine,
			Policy:  pol,
			Apps:    opts.apps(mix, seed),
			Seed:    seed,
		})
		if err != nil {
			return err
		}
		runs[idx] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		parallel.Fold(runs, func(idx int, r sched.Result) {
			opts.Stats.Add(policies[idx/R], r.Stats)
		})
	}
	rows := make([]RelatedWorkRow, len(policies))
	for pi, polName := range policies {
		rows[pi] = relatedWorkRowFrom(polName, runs[pi*R:(pi+1)*R])
	}
	return relatedWorkDerive(rows), nil
}

// relatedWorkPolicies lists the Section-8 contrast's four policies: time
// sharing with and without affinity, then space sharing likewise.
func relatedWorkPolicies() []string {
	return []string{"TimeShare-RR", "TimeShare-Aff", "Dynamic", "Dyn-Aff"}
}

// relatedWorkRowFrom aggregates one policy's replications in replication
// order. Shared by the monolithic campaign and the per-policy cell path,
// so both accumulate bitwise identically.
func relatedWorkRowFrom(polName string, runs []sched.Result) RelatedWorkRow {
	R := len(runs)
	var row RelatedWorkRow
	row.Policy = polName
	for rep := 0; rep < R; rep++ {
		r := runs[rep]
		n := float64(R)
		row.MeanRT += r.MeanResponse() / n
		for _, j := range r.Jobs {
			row.MissSec += j.MissTime.SecondsF() / n
			row.Reallocations += j.Reallocations / R
			row.PctAffinity += j.PctAffinity() / (n * float64(len(r.Jobs)))
		}
	}
	return row
}

// relatedWorkDerive computes the affinity-gain contrasts from the
// per-policy rows.
func relatedWorkDerive(rows []RelatedWorkRow) *RelatedWorkResult {
	res := &RelatedWorkResult{Rows: rows}
	byName := make(map[string]*RelatedWorkRow, len(rows))
	for i := range res.Rows {
		byName[res.Rows[i].Policy] = &res.Rows[i]
	}
	gain := func(base, aff string) float64 {
		b, a := byName[base].MeanRT, byName[aff].MeanRT
		if b == 0 {
			return 0
		}
		return (b - a) / b
	}
	res.TimeSharingAffinityGain = gain("TimeShare-RR", "TimeShare-Aff")
	res.SpaceSharingAffinityGain = gain("Dynamic", "Dyn-Aff")
	missGain := func(base, aff string) float64 {
		b, a := byName[base].MissSec, byName[aff].MissSec
		if b == 0 {
			return 0
		}
		return (b - a) / b
	}
	res.TimeSharingMissGain = missGain("TimeShare-RR", "TimeShare-Aff")
	res.SpaceSharingMissGain = missGain("Dynamic", "Dyn-Aff")
	return res
}

// RelatedWorkTable renders the comparison.
func RelatedWorkTable(r *RelatedWorkResult) report.Table {
	t := report.Table{
		Title: "Section 8 — affinity matters more under time sharing than space sharing (mix #5)",
		Headers: []string{"policy", "mean RT (s)", "miss stall (CPU-s)",
			"reallocations", "%affinity"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy,
			report.F(row.MeanRT, 2),
			report.F(row.MissSec, 2),
			fmt.Sprintf("%d", row.Reallocations),
			report.Pct(row.PctAffinity))
	}
	t.AddRow("", "", "", "", "")
	t.AddRow("affinity RT gain: time sharing", report.Pct(r.TimeSharingAffinityGain), "", "", "")
	t.AddRow("affinity RT gain: space sharing", report.Pct(r.SpaceSharingAffinityGain), "", "", "")
	t.AddRow("affinity miss-stall gain: time sharing", report.Pct(r.TimeSharingMissGain), "", "", "")
	t.AddRow("affinity miss-stall gain: space sharing", report.Pct(r.SpaceSharingMissGain), "", "", "")
	return t
}

// MPLPoint is one multiprogramming level of an MPL sweep.
type MPLPoint struct {
	Jobs   int
	MeanRT map[string]float64 // policy -> mean job response time (s)
}

// MPLSweep runs k identical GRAVITY jobs for k = 1..maxJobs under the given
// policies — an extension exhibit showing how the dynamic policies' edge
// over Equipartition varies with multiprogramming level (barrier dips
// matter most when a partner job can absorb them). It is MPLSweepCtx
// without cancellation.
func MPLSweep(opts Options, maxJobs int, policies []string) ([]MPLPoint, error) {
	return MPLSweepCtx(context.Background(), opts, maxJobs, policies)
}

// MPLSweepCtx is MPLSweep with cancellation.
func MPLSweepCtx(ctx context.Context, opts Options, maxJobs int, policies []string) ([]MPLPoint, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if maxJobs < 1 {
		return nil, fmt.Errorf("experiments: maxJobs must be >= 1")
	}
	// Fan the (level, policy, replication) cells out;
	// idx = ((k-1)*len(policies) + pi)*R + rep.
	R := opts.Replications
	rts := make([]float64, maxJobs*len(policies)*R)
	simStats := make([]obs.SimStats, len(rts))
	err := parallel.ForEach(ctx, opts.Workers, len(rts), func(ctx context.Context, idx int) error {
		rep := idx % R
		polName := policies[idx/R%len(policies)]
		k := idx/R/len(policies) + 1
		seed := parallel.CellSeed(opts.Seed, uint64(rep))
		mix := workload.Mix{Number: 100 + k, Gravity: k}
		pol, ok := core.ByName(polName)
		if !ok {
			return fmt.Errorf("experiments: unknown policy %q", polName)
		}
		r, err := runSim(sched.Config{
			Machine: opts.Machine,
			Policy:  pol,
			Apps:    opts.apps(mix, seed),
			Seed:    seed,
		})
		if err != nil {
			return err
		}
		rts[idx] = r.MeanResponse()
		simStats[idx] = r.Stats
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		parallel.Fold(simStats, func(idx int, s obs.SimStats) {
			opts.Stats.Add(policies[idx/R%len(policies)], s)
		})
	}
	var out []MPLPoint
	for k := 1; k <= maxJobs; k++ {
		pt := MPLPoint{Jobs: k, MeanRT: make(map[string]float64)}
		for pi, polName := range policies {
			var mean float64
			base := ((k-1)*len(policies) + pi) * R
			for rep := 0; rep < R; rep++ {
				mean += rts[base+rep] / float64(R)
			}
			pt.MeanRT[polName] = mean
		}
		out = append(out, pt)
	}
	return out, nil
}

// MPLTable renders an MPL sweep.
func MPLTable(points []MPLPoint, policies []string) report.Table {
	t := report.Table{
		Title:   "Extension — mean job response time vs multiprogramming level (GRAVITY x k)",
		Headers: append([]string{"jobs"}, policies...),
	}
	for _, pt := range points {
		row := []string{fmt.Sprintf("%d", pt.Jobs)}
		for _, p := range policies {
			row = append(row, report.F(pt.MeanRT[p], 2))
		}
		t.AddRow(row...)
	}
	return t
}

// OpenArrivals runs an open system: jobs of the given mix composition
// arrive with exponential interarrival times (mean interarrival seconds),
// cycling through the mix's application types, until njobs have arrived.
// It returns the mean job response time per policy — an extension beyond
// the paper's closed mixes. It is OpenArrivalsCtx without cancellation.
func OpenArrivals(opts Options, interarrival simtime.Duration, njobs int, policies []string) (map[string]float64, error) {
	return OpenArrivalsCtx(context.Background(), opts, interarrival, njobs, policies)
}

// OpenArrivalsCtx is OpenArrivals with cancellation.
func OpenArrivalsCtx(ctx context.Context, opts Options, interarrival simtime.Duration, njobs int, policies []string) (map[string]float64, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if njobs < 1 || interarrival <= 0 {
		return nil, fmt.Errorf("experiments: need njobs >= 1 and positive interarrival")
	}
	// Fan the (policy, replication) cells out; idx = pi*R + rep.
	R := opts.Replications
	rts := make([]float64, len(policies)*R)
	err := parallel.ForEach(ctx, opts.Workers, len(rts), func(ctx context.Context, idx int) error {
		rep := idx % R
		polName := policies[idx/R]
		seed := parallel.CellSeed(opts.Seed, uint64(rep))
		// Build the job list by cycling app types; arrivals are a seeded
		// Poisson process.
		mix := workload.Mix{Number: 200, MVA: (njobs + 2) / 3, Matrix: (njobs + 1) / 3, Gravity: njobs / 3}
		apps := opts.apps(mix, seed)[:njobs]
		arrivals := poissonArrivals(njobs, interarrival, seed)
		pol, ok := core.ByName(polName)
		if !ok {
			return fmt.Errorf("experiments: unknown policy %q", polName)
		}
		r, err := runSim(sched.Config{
			Machine:  opts.Machine,
			Policy:   pol,
			Apps:     apps,
			Arrivals: arrivals,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		rts[idx] = r.MeanResponse()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(policies))
	for pi, polName := range policies {
		var mean float64
		for rep := 0; rep < R; rep++ {
			mean += rts[pi*R+rep] / float64(R)
		}
		out[polName] = mean
	}
	return out, nil
}

// poissonArrivals generates cumulative exponential interarrival instants.
func poissonArrivals(n int, mean simtime.Duration, seed uint64) []simtime.Time {
	rng := newArrivalRNG(seed)
	out := make([]simtime.Time, n)
	var t simtime.Time
	for i := 0; i < n; i++ {
		out[i] = t
		t = t.Add(simtime.Duration(float64(mean) * rng.ExpFloat64()))
	}
	return out
}
