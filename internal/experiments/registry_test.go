package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/report"
)

func TestCampaignRegistryKinds(t *testing.T) {
	want := []string{"characterize", "table1", "compare", "future", "futuresim", "relatedwork"}
	got := Campaigns()
	if len(got) != len(want) {
		t.Fatalf("got %d campaigns, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Kind != want[i] {
			t.Errorf("campaign %d: got kind %q, want %q", i, c.Kind, want[i])
		}
		if c.Description == "" {
			t.Errorf("campaign %q has no description", c.Kind)
		}
		byKind, ok := CampaignByKind(c.Kind)
		if !ok || byKind.Kind != c.Kind {
			t.Errorf("CampaignByKind(%q) = %v, %v", c.Kind, byKind.Kind, ok)
		}
	}
	if _, ok := CampaignByKind("nonsense"); ok {
		t.Error("CampaignByKind accepted an unknown kind")
	}
}

func TestCampaignNormalizeDefaults(t *testing.T) {
	c, _ := CampaignByKind("compare")
	n, err := c.Normalize(CampaignParams{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Seed != 1 || n.Procs != 16 || n.Replications != 5 || n.AppScale != 1 {
		t.Errorf("unexpected defaults: %+v", n)
	}
	if len(n.Policies) == 0 {
		t.Error("compare normalization left the policy list empty")
	}
	// Normalization is idempotent, so semantically identical requests
	// (zero-value vs spelled-out defaults) share one cache identity.
	n2, err := c.Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := report.CanonicalJSON(n)
	b, _ := report.CanonicalJSON(n2)
	if !bytes.Equal(a, b) {
		t.Errorf("normalization not idempotent:\n%s\n%s", a, b)
	}
	// An explicitly-spelled default request normalizes to the same bytes.
	n3, err := c.Normalize(CampaignParams{Seed: 1, Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	cjson, _ := report.CanonicalJSON(n3)
	if !bytes.Equal(a, cjson) {
		t.Errorf("equivalent requests normalize differently:\n%s\n%s", a, cjson)
	}
}

func TestCampaignNormalizeZeroesIrrelevantFields(t *testing.T) {
	c, _ := CampaignByKind("table1")
	n, err := c.Normalize(CampaignParams{Mix: 5, MaxProduct: 64, Policies: []string{"Dyn-Aff"}, Products: []float64{4}})
	if err != nil {
		t.Fatal(err)
	}
	if n.Mix != 0 || n.MaxProduct != 0 || n.Policies != nil || n.Products != nil {
		t.Errorf("table1 normalization kept irrelevant fields: %+v", n)
	}
	if n.BudgetSec != 20 {
		t.Errorf("table1 budget default: got %v, want 20", n.BudgetSec)
	}
}

func TestCampaignNormalizeRejectsBadParams(t *testing.T) {
	cases := []struct {
		kind string
		p    CampaignParams
	}{
		{"compare", CampaignParams{Mix: 99}},
		{"compare", CampaignParams{Policies: []string{"NoSuchPolicy"}}},
		{"futuresim", CampaignParams{Products: []float64{0.5}}},
		{"future", CampaignParams{MaxProduct: 0.25}},
		{"table1", CampaignParams{Procs: -1}},
		{"table1", CampaignParams{BudgetSec: 0.01}}, // below the largest Q
	}
	for _, tc := range cases {
		c, ok := CampaignByKind(tc.kind)
		if !ok {
			t.Fatalf("unknown kind %q", tc.kind)
		}
		if _, err := c.Run(context.Background(), tc.p); err == nil {
			t.Errorf("%s %+v: expected an error", tc.kind, tc.p)
		}
	}
}

// fastCampaignParams is a scaled-down parameterization cheap enough for
// unit tests.
func fastCampaignParams() CampaignParams {
	return CampaignParams{Fast: true, Replications: 1, BudgetSec: 0.5, Workers: 2}
}

// TestCampaignRunDeterministicJSON runs the cheap kinds twice and asserts
// the canonical encodings match byte for byte — the property the service's
// result cache relies on.
func TestCampaignRunDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	for _, kind := range []string{"characterize", "relatedwork"} {
		c, _ := CampaignByKind(kind)
		enc := func() []byte {
			res, err := c.Run(context.Background(), fastCampaignParams())
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			b, err := report.CanonicalJSON(res)
			if err != nil {
				t.Fatalf("%s: encode: %v", kind, err)
			}
			return b
		}
		a, b := enc(), enc()
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two runs produced different canonical JSON", kind)
		}
		if len(a) == 0 || a[0] != '{' {
			t.Errorf("%s: implausible result encoding %q", kind, a[:min(len(a), 40)])
		}
	}
}

// TestCampaignRunCancelled checks a cancelled context aborts a campaign
// with the context's error rather than running it to completion.
func TestCampaignRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []string{"characterize", "table1", "compare", "future", "futuresim", "relatedwork"} {
		c, _ := CampaignByKind(kind)
		if _, err := c.Run(ctx, fastCampaignParams()); err == nil {
			t.Errorf("%s: cancelled run returned no error", kind)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWithBaseline checks the future kind's comparison list gains the
// Equipartition baseline exactly once, whether or not the request already
// names it — a duplicate would simulate the most expensive cells twice.
func TestWithBaseline(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		{[]string{"Dynamic", "Dyn-Aff"}, []string{"Equipartition", "Dynamic", "Dyn-Aff"}},
		{[]string{"Equipartition", "Dynamic"}, []string{"Equipartition", "Dynamic"}},
		{[]string{"Dynamic", "Equipartition"}, []string{"Dynamic", "Equipartition"}},
		{nil, []string{"Equipartition"}},
	}
	for _, tc := range cases {
		got := withBaseline(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("withBaseline(%v) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("withBaseline(%v) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}
