package experiments

import (
	"context"
	"fmt"

	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// ScenarioKey identifies one extrapolation scenario: one application type
// within one workload mix (the paper's Figures 8–13 are one figure per
// workload, plotting a representative application).
type ScenarioKey struct {
	Mix int
	App string
}

// String renders the key like the paper's figure captions
// ("wkload5 - GRAVITY").
func (k ScenarioKey) String() string { return fmt.Sprintf("wkload%d - %s", k.Mix, k.App) }

// FutureScenarios extracts model parameters from the scheduling experiments
// and the Table-1 penalty measurements, producing one model.Scenario per
// (mix, application type) — the Section 7.3 procedure:
//
//   - #reallocations, %affinity, waste, and average allocation come
//     directly from the measured job metrics;
//   - P^A and P^NA come from the Table-1 cell at the Q nearest the job's
//     observed reallocation interval, with P^A averaged over the other
//     applications in the mix;
//   - work is backed out of equation (1) so that the model reproduces the
//     measured response time exactly at speed = cache = 1.
func FutureScenarios(cr *CompareResult, t1 measure.Table1) (map[ScenarioKey]model.Scenario, error) {
	out := make(map[ScenarioKey]model.Scenario)
	switchSec := cr.Opts.Machine.SwitchPath.SecondsF()
	for _, mix := range cr.Mixes {
		// Application types present in this mix, for P^A averaging.
		var present []string
		for _, js := range cr.Summaries[mix.Number][cr.Policies[0]] {
			present = append(present, js.App)
		}
		for _, app := range uniqueStrings(present) {
			key := ScenarioKey{Mix: mix.Number, App: app}
			sc := model.Scenario{
				Name:     key.String(),
				Baseline: "Equipartition",
				Policies: make(map[string]model.Params),
			}
			for _, pol := range cr.Policies {
				sums := cr.Summaries[mix.Number][pol]
				// Average jobs of this application type.
				var agg JobSummary
				n := 0
				for _, js := range sums {
					if js.App != app {
						continue
					}
					n++
					agg.WasteSec += js.WasteSec
					agg.AvgAlloc += js.AvgAlloc
					agg.Reallocations += js.Reallocations
					agg.PctAffinity += js.PctAffinity
					agg.IntervalMs += js.IntervalMs
					if agg.RT == nil {
						agg.RT = js.RT
					}
				}
				if n == 0 {
					continue
				}
				fn := float64(n)
				agg.WasteSec /= fn
				agg.AvgAlloc /= fn
				agg.Reallocations /= fn
				agg.PctAffinity /= fn
				agg.IntervalMs /= fn

				intervening := otherApps(present, app)
				q := cr.Opts.ExtractionQ
				if q == 0 {
					q = simtime.Duration(agg.IntervalMs * float64(simtime.Millisecond))
				}
				pa, pna := PenaltyFor(t1, app, intervening, q)
				rt := agg.RT.Mean()
				penalty := agg.PctAffinity*pa + (1-agg.PctAffinity)*pna
				work := rt*agg.AvgAlloc - agg.WasteSec - agg.Reallocations*(switchSec+penalty)
				if work <= 0 {
					work = rt * agg.AvgAlloc * 0.01 // degenerate; keep the model valid
				}
				p := model.Params{
					Work:          work,
					Waste:         agg.WasteSec,
					Reallocations: agg.Reallocations,
					ReallocTime:   switchSec,
					PctAffinity:   agg.PctAffinity,
					PA:            pa,
					PNA:           pna,
					AvgAlloc:      agg.AvgAlloc,
				}
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("experiments: %s/%s: %w", key, pol, err)
				}
				sc.Policies[pol] = p
			}
			if err := sc.Validate(); err != nil {
				return nil, err
			}
			out[key] = sc
		}
	}
	return out, nil
}

func uniqueStrings(in []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func otherApps(present []string, app string) []string {
	var out []string
	for _, s := range uniqueStrings(present) {
		if s != app {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		// Homogeneous mix: the intervening tasks are instances of the
		// same application.
		out = []string{app}
	}
	return out
}

// FigureApp selects the representative application plotted for each mix in
// the paper's Figures 8–13.
func FigureApp(mix workload.Mix) string {
	switch {
	case mix.Gravity > 0 && mix.Number >= 3:
		return "GRAVITY"
	case mix.Matrix > 0:
		return "MATRIX"
	default:
		return "MVA"
	}
}

// FutureCharts produces one chart per mix: the dynamic policies' relative
// response times against the speed×cache product (Figures 8–13). It is
// FutureChartsCtx without cancellation.
func FutureCharts(cr *CompareResult, scenarios map[ScenarioKey]model.Scenario, policies []string, maxProduct float64) ([]report.Chart, error) {
	return FutureChartsCtx(context.Background(), cr, scenarios, policies, maxProduct)
}

// FutureChartsCtx is FutureCharts with cancellation.
func FutureChartsCtx(ctx context.Context, cr *CompareResult, scenarios map[ScenarioKey]model.Scenario, policies []string, maxProduct float64) ([]report.Chart, error) {
	products := model.Products(maxProduct, 2)
	// Sweep each mix's scenario on the campaign's worker pool; slots keep
	// the charts in mix order, and figure numbers are assigned afterwards
	// so skipped mixes do not leave gaps.
	slots := make([]*report.Chart, len(cr.Mixes))
	err := parallel.ForEach(ctx, cr.Opts.Workers, len(cr.Mixes), func(ctx context.Context, mi int) error {
		mix := cr.Mixes[mi]
		key := ScenarioKey{Mix: mix.Number, App: FigureApp(mix)}
		sc, ok := scenarios[key]
		if !ok {
			return nil
		}
		ch := &report.Chart{
			Title:  key.String(),
			XLabel: "processor-speed x cache-size (log2)",
			YLabel: "RT / RT(Equipartition)",
			Xs:     products,
			LogX:   true,
			RefY:   1.0,
			RefYOn: true,
		}
		for _, pol := range policies {
			if _, ok := sc.Policies[pol]; !ok {
				continue
			}
			ys, err := sc.SweepProduct(pol, products)
			if err != nil {
				return err
			}
			ch.Series = append(ch.Series, report.Series{Name: pol, Ys: ys})
		}
		slots[mi] = ch
		return nil
	})
	if err != nil {
		return nil, err
	}
	var charts []report.Chart
	figure := 8
	for _, ch := range slots {
		if ch == nil {
			continue
		}
		ch.Title = fmt.Sprintf("Figure %d — relative response times, %s", figure, ch.Title)
		charts = append(charts, *ch)
		figure++
	}
	return charts, nil
}
