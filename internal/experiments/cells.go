package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/memtrace"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file decomposes every registered campaign into cells: the
// independently executable, independently cacheable units of its grid.
// Each cell's bytes depend only on the parameters captured in its key
// material — never on the rest of the grid — so overlapping campaigns
// (a superset policy list, a second kind sharing a sub-grid) address the
// same cache entries, and a merge over any mix of fresh and cached
// partials is byte-identical to the monolithic Campaign.Run.
//
// The invariants every per-kind builder maintains:
//
//  1. Cell order matches the monolithic driver's grid order, so the
//     merge can reassemble by index.
//  2. Partials carry enough raw precision for the merge to perform each
//     lossy conversion (simtime.Duration -> float microseconds, ratio
//     against a baseline) exactly once, in the same place the monolithic
//     path performs it. Replication means are folded in replication
//     order inside the cell, exactly as the monolithic accumulators do.
//  3. Key params exclude Workers (results are bitwise identical at every
//     worker count) and exclude the grid lists themselves (a cell's
//     identity is its own coordinates, so supersets reuse subsets).

// Cell is one unit of a sharded campaign.
type Cell struct {
	// ID names the cell within its plan, e.g. "mix=5/policy=Dyn-Aff".
	ID string
	// KeyKind is the cell's cache namespace ("cell/compare", ...).
	// Kinds that share cell shapes share namespaces: a future campaign's
	// policy cells are compare cells, so a prior compare run seeds them.
	KeyKind string
	// KeyParams is the canonical JSON of every parameter that can
	// influence the cell's bytes, ready to hash into a cache key.
	KeyParams []byte
	// Engine is the resolved execution tier of this cell — EngineSim or
	// EngineAnalytic, never EngineAuto: auto resolves against the promotion
	// envelope at planning time, so cache keys (which include Engine for
	// the grid-shaped kinds) carry only concrete tiers and an auto cell
	// shares its entry with the same cell requested explicitly. Empty for
	// kinds without an engine choice.
	Engine string

	run func(ctx context.Context) (any, error)
}

// Run executes the cell. The result is JSON-marshalable, byte-stable
// under report.CanonicalJSON, and bitwise identical at every worker
// count. If ctx carries an obs collector, per-run simulation stats fold
// into it out of band.
func (c *Cell) Run(ctx context.Context) (any, error) { return c.run(ctx) }

// CellPlan is a campaign split into cells plus the deterministic merge
// that reassembles the monolithic wire result.
type CellPlan struct {
	Kind string
	// Params is the campaign's normalized parameterization.
	Params CampaignParams
	// Cells in the kind's grid order.
	Cells []Cell

	merge func(ctx context.Context, partials []json.RawMessage) (any, error)
}

// Merge reassembles the campaign result from one canonical-JSON partial
// per cell, in Cells order. The output marshals (under
// report.CanonicalJSON) to exactly the bytes Campaign.Run produces for
// the same params.
func (p *CellPlan) Merge(ctx context.Context, partials [][]byte) (any, error) {
	if len(partials) != len(p.Cells) {
		return nil, fmt.Errorf("experiments: %s: %d partials for %d cells", p.Kind, len(partials), len(p.Cells))
	}
	raws := make([]json.RawMessage, len(partials))
	for i, b := range partials {
		if len(b) == 0 {
			return nil, fmt.Errorf("experiments: %s: missing partial for cell %s", p.Kind, p.Cells[i].ID)
		}
		raws[i] = json.RawMessage(b)
	}
	return p.merge(ctx, raws)
}

// Cells normalizes p and splits the campaign into its cell plan.
func Cells(kind string, p CampaignParams) (*CellPlan, error) {
	c, ok := CampaignByKind(kind)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown campaign kind %q", kind)
	}
	np, err := c.Normalize(p)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "characterize":
		return characterizeCellPlan(np)
	case "table1":
		return table1CellPlan(np)
	case "compare":
		return compareCellPlan(np)
	case "future":
		return futureCellPlan(np)
	case "futuresim":
		return futureSimCellPlan(np)
	case "relatedwork":
		return relatedWorkCellPlan(np)
	}
	return nil, fmt.Errorf("experiments: campaign kind %q has no cell decomposition", kind)
}

// decodeParts unmarshals one partial per cell into the kind's partial
// type.
func decodeParts[T any](raws []json.RawMessage) ([]T, error) {
	out := make([]T, len(raws))
	for i, r := range raws {
		if err := json.Unmarshal(r, &out[i]); err != nil {
			return nil, fmt.Errorf("experiments: decode cell partial %d: %w", i, err)
		}
	}
	return out, nil
}

func cellKey(v any) ([]byte, error) { return report.CanonicalJSON(v) }

// ---- characterize ------------------------------------------------------

// characterizeCellKey is the cache identity of one isolated-application
// characterization. AppScale changes the application itself, Procs the
// machine it runs on, Seed every random draw.
type characterizeCellKey struct {
	Procs    int    `json:"procs"`
	AppScale int    `json:"app_scale"`
	Seed     uint64 `json:"seed"`
	App      string `json:"app"`
}

func characterizeCellPlan(np CampaignParams) (*CellPlan, error) {
	opts, err := np.options()
	if err != nil {
		return nil, err
	}
	apps := characterizeApps(opts)
	plan := &CellPlan{Kind: "characterize", Params: np}
	for i := range apps {
		i := i
		key, err := cellKey(characterizeCellKey{
			Procs: np.Procs, AppScale: np.AppScale, Seed: np.Seed, App: apps[i].Name,
		})
		if err != nil {
			return nil, err
		}
		plan.Cells = append(plan.Cells, Cell{
			ID:        "app=" + apps[i].Name,
			KeyKind:   "cell/characterize",
			KeyParams: key,
			run: func(ctx context.Context) (any, error) {
				o, err := np.optionsCtx(ctx)
				if err != nil {
					return nil, err
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				ch, st, err := characterizeApp(o, characterizeApps(o)[i])
				if err != nil {
					return nil, err
				}
				if o.Stats != nil {
					o.Stats.Add("Equipartition", st)
				}
				return ch, nil
			},
		})
	}
	plan.merge = func(ctx context.Context, raws []json.RawMessage) (any, error) {
		chars, err := decodeParts[AppCharacter](raws)
		if err != nil {
			return nil, err
		}
		return CharacterizeCampaignResult{Apps: chars}, nil
	}
	return plan, nil
}

// ---- table1 ------------------------------------------------------------

// table1CellKey is the cache identity of one (Q, measured application)
// penalty measurement. Procs is absent: the protocol always measures on
// a single processor.
type table1CellKey struct {
	BudgetSec float64 `json:"budget_sec"`
	Seed      uint64  `json:"seed"`
	QMs       float64 `json:"q_ms"`
	App       string  `json:"app"`
}

// table1CellPartial carries one cell's penalties as raw simtime ticks,
// not float microseconds: Duration -> Micros() is a lossy float
// division, so the merge performs it exactly once, in the same place the
// monolithic path does.
type table1CellPartial struct {
	PNARaw int64            `json:"pna_raw"`
	PARaw  map[string]int64 `json:"pa_raw"`
}

func table1CellPlan(np CampaignParams) (*CellPlan, error) {
	if _, err := np.options(); err != nil {
		return nil, err
	}
	// DefaultQs is ascending, so cell order (q-major, pattern-minor, the
	// BuildTable1Ctx layout) already matches the sorted iteration of the
	// monolithic wire encoding.
	qs := measure.DefaultQs()
	names := patternNames()
	plan := &CellPlan{Kind: "table1", Params: np}
	for qi := range qs {
		for pi := range names {
			qi, pi := qi, pi
			key, err := cellKey(table1CellKey{
				BudgetSec: np.BudgetSec, Seed: np.Seed, QMs: qs[qi].Millis(), App: names[pi],
			})
			if err != nil {
				return nil, err
			}
			plan.Cells = append(plan.Cells, Cell{
				ID:        fmt.Sprintf("q=%gms/app=%s", qs[qi].Millis(), names[pi]),
				KeyKind:   "cell/table1",
				KeyParams: key,
				run: func(ctx context.Context) (any, error) {
					o, err := np.optionsCtx(ctx)
					if err != nil {
						return nil, err
					}
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					mc := o.Machine
					mc.Processors = 1 // the paper's measurement uses a single processor
					pats := memtrace.Patterns()
					pen, err := measure.MeasureCell(mc, pats, pi, qs[qi], o.MeasureBudget, o.Seed)
					if err != nil {
						return nil, err
					}
					if o.Stats != nil {
						o.Stats.Add("measure", table1CellStats(mc, pen, names, o.MeasureBudget))
					}
					part := table1CellPartial{
						PNARaw: int64(pen.PNA),
						PARaw:  make(map[string]int64, len(pen.PA)),
					}
					for iv, d := range pen.PA {
						part.PARaw[iv] = int64(d)
					}
					return part, nil
				},
			})
		}
	}
	plan.merge = func(ctx context.Context, raws []json.RawMessage) (any, error) {
		parts, err := decodeParts[table1CellPartial](raws)
		if err != nil {
			return nil, err
		}
		out := Table1CampaignResult{
			Apps:  append([]string(nil), names...),
			Cells: make(map[string]map[string]Table1CampaignCell, len(qs)),
		}
		for qi, q := range qs {
			out.QsMs = append(out.QsMs, q.Millis())
			cells := make(map[string]Table1CampaignCell, len(names))
			for pi, app := range names {
				part := parts[qi*len(names)+pi]
				cell := Table1CampaignCell{
					PNAMicros: simtime.Duration(part.PNARaw).Micros(),
					PAMicros:  make(map[string]float64, len(part.PARaw)),
				}
				for iv, raw := range part.PARaw {
					cell.PAMicros[iv] = simtime.Duration(raw).Micros()
				}
				cells[app] = cell
			}
			out.Cells[fmt.Sprintf("%g", q.Millis())] = cells
		}
		return out, nil
	}
	return plan, nil
}

func patternNames() []string {
	pats := memtrace.Patterns()
	names := make([]string, len(pats))
	for i, p := range pats {
		names[i] = p.Name
	}
	return names
}

// table1MeasureCells rebuilds a measure.Table1 from table1 cell partials
// laid out q-major: parts[qi*len(names)+pi]. Only the fields the future
// kind's parameter extraction reads (PNA, PA) are populated.
func table1MeasureCells(qs []simtime.Duration, names []string, parts []table1CellPartial) measure.Table1 {
	t1 := measure.Table1{
		Qs:    qs,
		Apps:  append([]string(nil), names...),
		Cells: make(map[simtime.Duration]map[string]measure.Penalties, len(qs)),
	}
	for qi, q := range qs {
		t1.Cells[q] = make(map[string]measure.Penalties, len(names))
		for pi, app := range names {
			part := parts[qi*len(names)+pi]
			pen := measure.Penalties{
				Measured: app,
				Q:        q,
				PNA:      simtime.Duration(part.PNARaw),
				PA:       make(map[string]simtime.Duration, len(part.PARaw)),
			}
			for iv, raw := range part.PARaw {
				pen.PA[iv] = simtime.Duration(raw)
			}
			t1.Cells[q][app] = pen
		}
	}
	return t1
}

// ---- compare (shared with future) --------------------------------------

// compareCellKey is the cache identity of one (mix, policy) comparison
// cell. The policy list and mix list are absent by design: the cell's
// seeds are parallel.CellSeed(seed, mix, rep) — policy-independent — so
// any campaign whose grid contains this coordinate produces these bytes.
type compareCellKey struct {
	Procs    int    `json:"procs"`
	Reps     int    `json:"reps"`
	AppScale int    `json:"app_scale"`
	Seed     uint64 `json:"seed"`
	Mix      int    `json:"mix"`
	Policy   string `json:"policy"`
	// Engine is the resolved tier ("sim" or "analytic"), spelled explicitly
	// even for the default: analytic estimates and simulated results must
	// never collide onto one cache entry.
	Engine string `json:"engine"`
}

// compareCellJob is one job's replication-averaged outcome within a
// compare cell; fields mirror CompareCampaignRow minus the cross-cell
// RelRT, which the merge derives.
type compareCellJob struct {
	App           string  `json:"app"`
	MeanRTSec     float64 `json:"mean_rt_sec"`
	WorkSec       float64 `json:"work_sec"`
	WasteSec      float64 `json:"waste_sec"`
	MissSec       float64 `json:"miss_sec"`
	SwitchSec     float64 `json:"switch_sec"`
	AvgAlloc      float64 `json:"avg_alloc"`
	Reallocations float64 `json:"reallocations"`
	PctAffinity   float64 `json:"pct_affinity"`
	IntervalMs    float64 `json:"realloc_interval_ms"`
}

type compareCellPartial struct {
	Jobs []compareCellJob `json:"jobs"`
}

// compareCellList builds the (mix, policy) cells for the given grid,
// mix-major. Shared by the compare and future kinds, whose policy cells
// are the same cache entries.
func compareCellList(np CampaignParams, mixNumbers []int, policies []string) ([]Cell, error) {
	eng, err := normalizeEngine(np.Engine)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, mixNum := range mixNumbers {
		for _, pol := range policies {
			mixNum, pol := mixNum, pol
			// Auto resolves here, at planning time, so the key below and the
			// Cell.Engine surfaced to clients both carry a concrete tier.
			engine := resolveCellEngine(eng, compareCellCoord(
				np.Procs, np.Replications, np.AppScale, np.Seed, mixNum, pol))
			key, err := cellKey(compareCellKey{
				Procs: np.Procs, Reps: np.Replications, AppScale: np.AppScale,
				Seed: np.Seed, Mix: mixNum, Policy: pol, Engine: engine,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, Cell{
				ID:        fmt.Sprintf("mix=%d/policy=%s", mixNum, pol),
				KeyKind:   "cell/compare",
				KeyParams: key,
				Engine:    engine,
				run: func(ctx context.Context) (any, error) {
					o, err := np.optionsCtx(ctx)
					if err != nil {
						return nil, err
					}
					// Pin the resolved tier: the single-coordinate run below
					// must use exactly the engine hashed into this cell's key,
					// even though it re-derives the same resolution itself.
					o.Engine = engine
					mix, err := workload.MixByNumber(mixNum)
					if err != nil {
						return nil, err
					}
					// A single-coordinate ComparePoliciesCtx call: its seeds
					// are position-independent, so the summaries equal the
					// matching block of any larger grid.
					cr, err := ComparePoliciesCtx(ctx, o, []workload.Mix{mix}, []string{pol})
					if err != nil {
						return nil, err
					}
					sums := cr.Summaries[mixNum][pol]
					part := compareCellPartial{Jobs: make([]compareCellJob, len(sums))}
					for ji, js := range sums {
						part.Jobs[ji] = compareCellJob{
							App:           js.App,
							MeanRTSec:     js.MeanRT(),
							WorkSec:       js.WorkSec,
							WasteSec:      js.WasteSec,
							MissSec:       js.MissSec,
							SwitchSec:     js.SwitchSec,
							AvgAlloc:      js.AvgAlloc,
							Reallocations: js.Reallocations,
							PctAffinity:   js.PctAffinity,
							IntervalMs:    js.IntervalMs,
						}
					}
					return part, nil
				},
			})
		}
	}
	return cells, nil
}

// compareMergeRows rebuilds the compare wire rows from per-cell partials
// laid out policy-minor: parts[mi*len(policies)+pi]. RelRT is derived
// here, from the same float values the monolithic path divides.
func compareMergeRows(mixNumbers []int, policies []string, parts []compareCellPartial) CompareCampaignResult {
	out := CompareCampaignResult{Policies: append([]string(nil), policies...)}
	hasBaseline := false
	for _, pol := range policies {
		if pol == "Equipartition" {
			hasBaseline = true
		}
	}
	for mi, mixNum := range mixNumbers {
		out.Mixes = append(out.Mixes, mixNum)
		var base compareCellPartial
		if hasBaseline {
			// Matches the monolithic map lookup: with duplicate baseline
			// entries all partials are identical, so any one serves.
			for pi, pol := range policies {
				if pol == "Equipartition" {
					base = parts[mi*len(policies)+pi]
				}
			}
		}
		for pi, pol := range policies {
			part := parts[mi*len(policies)+pi]
			for ji, job := range part.Jobs {
				row := CompareCampaignRow{
					Mix:           mixNum,
					Policy:        pol,
					Job:           ji,
					App:           job.App,
					MeanRTSec:     job.MeanRTSec,
					WorkSec:       job.WorkSec,
					WasteSec:      job.WasteSec,
					MissSec:       job.MissSec,
					SwitchSec:     job.SwitchSec,
					AvgAlloc:      job.AvgAlloc,
					Reallocations: job.Reallocations,
					PctAffinity:   job.PctAffinity,
					IntervalMs:    job.IntervalMs,
				}
				if hasBaseline {
					row.RelRT = stats.Ratio(job.MeanRTSec, base.Jobs[ji].MeanRTSec)
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out
}

func allMixNumbers() []int {
	mixes := workload.Mixes()
	out := make([]int, len(mixes))
	for i, m := range mixes {
		out[i] = m.Number
	}
	return out
}

func compareCellPlan(np CampaignParams) (*CellPlan, error) {
	if _, err := np.options(); err != nil {
		return nil, err
	}
	mixNumbers := allMixNumbers()
	if np.Mix != 0 {
		mixNumbers = []int{np.Mix}
	}
	cells, err := compareCellList(np, mixNumbers, np.Policies)
	if err != nil {
		return nil, err
	}
	plan := &CellPlan{Kind: "compare", Params: np, Cells: cells}
	plan.merge = func(ctx context.Context, raws []json.RawMessage) (any, error) {
		parts, err := decodeParts[compareCellPartial](raws)
		if err != nil {
			return nil, err
		}
		return compareMergeRows(mixNumbers, np.Policies, parts), nil
	}
	return plan, nil
}

// ---- future ------------------------------------------------------------

// futureCellPlan reuses the compare and table1 cell shapes: the future
// kind's simulation grid is workload.Mixes() x withBaseline(policies)
// compare cells followed by the table1 measurement cells, so a prior
// compare or table1 campaign (or another future run with an overlapping
// policy list) seeds its cache entries. The merge reconstructs the
// CompareResult and measure.Table1 that the Section-7.3 parameter
// extraction reads, then runs the analytic sweep — pure float math on
// exactly the values the monolithic path feeds it.
func futureCellPlan(np CampaignParams) (*CellPlan, error) {
	opts, err := np.options()
	if err != nil {
		return nil, err
	}
	cols := withBaseline(np.Policies)
	mixNumbers := allMixNumbers()
	compareCells, err := compareCellList(np, mixNumbers, cols)
	if err != nil {
		return nil, err
	}
	t1Plan, err := table1CellPlan(np)
	if err != nil {
		return nil, err
	}
	plan := &CellPlan{Kind: "future", Params: np, Cells: append(compareCells, t1Plan.Cells...)}
	nc := len(compareCells)
	qs := measure.DefaultQs()
	names := patternNames()
	plan.merge = func(ctx context.Context, raws []json.RawMessage) (any, error) {
		cparts, err := decodeParts[compareCellPartial](raws[:nc])
		if err != nil {
			return nil, err
		}
		tparts, err := decodeParts[table1CellPartial](raws[nc:])
		if err != nil {
			return nil, err
		}
		// Rebuild the CompareResult the scenario extraction reads. Each
		// job's RT sample holds the one value the extraction takes the
		// mean of — the cell's replication-averaged mean itself, whose
		// single-value mean is exact.
		mixes := workload.Mixes()
		cr := &CompareResult{
			Opts:      opts,
			Mixes:     mixes,
			Policies:  cols,
			Summaries: make(map[int]map[string][]JobSummary, len(mixes)),
		}
		for mi, mix := range mixes {
			cr.Summaries[mix.Number] = make(map[string][]JobSummary, len(cols))
			for ci, col := range cols {
				part := cparts[mi*len(cols)+ci]
				sums := make([]JobSummary, len(part.Jobs))
				for ji, job := range part.Jobs {
					rt := &stats.Sample{}
					rt.Add(job.MeanRTSec)
					sums[ji] = JobSummary{
						App:           job.App,
						RT:            rt,
						WorkSec:       job.WorkSec,
						WasteSec:      job.WasteSec,
						MissSec:       job.MissSec,
						SwitchSec:     job.SwitchSec,
						AvgAlloc:      job.AvgAlloc,
						Reallocations: job.Reallocations,
						PctAffinity:   job.PctAffinity,
						IntervalMs:    job.IntervalMs,
					}
				}
				cr.Summaries[mix.Number][col] = sums
			}
		}
		t1 := table1MeasureCells(qs, names, tparts)
		scen, err := FutureScenarios(cr, t1)
		if err != nil {
			return nil, err
		}
		return futureResultJSON(ctx, scen, np)
	}
	return plan, nil
}

// ---- futuresim ---------------------------------------------------------

// futureSimCellKey is the cache identity of one (product, policy) point
// of the simulated-future sweep. Replication seeds are shared across the
// whole grid (CellSeed of the replication alone), so the product and
// policy lists are absent and supersets reuse points.
type futureSimCellKey struct {
	Procs    int     `json:"procs"`
	Reps     int     `json:"reps"`
	AppScale int     `json:"app_scale"`
	Seed     uint64  `json:"seed"`
	Mix      int     `json:"mix"`
	Product  float64 `json:"product"`
	Policy   string  `json:"policy"`
	// Engine is the resolved tier ("sim" or "analytic"); see compareCellKey.
	Engine string `json:"engine"`
}

// futureSimCellPartial is one point's replication-mean response time;
// the merge divides policy means by the Equipartition mean, exactly as
// the monolithic path does.
type futureSimCellPartial struct {
	MeanRTSec float64 `json:"mean_rt_sec"`
}

func futureSimCellPlan(np CampaignParams) (*CellPlan, error) {
	if _, err := np.options(); err != nil {
		return nil, err
	}
	eng, err := normalizeEngine(np.Engine)
	if err != nil {
		return nil, err
	}
	// The baseline joins the policy axis as column zero, unconditionally —
	// mirroring FutureSimulatedCtx.
	cols := append([]string{"Equipartition"}, np.Policies...)
	plan := &CellPlan{Kind: "futuresim", Params: np}
	for _, prod := range np.Products {
		for _, col := range cols {
			prod, col := prod, col
			engine := resolveCellEngine(eng, futureSimCellCoord(
				np.Procs, np.Replications, np.AppScale, np.Seed, np.Mix, prod, col))
			key, err := cellKey(futureSimCellKey{
				Procs: np.Procs, Reps: np.Replications, AppScale: np.AppScale,
				Seed: np.Seed, Mix: np.Mix, Product: prod, Policy: col, Engine: engine,
			})
			if err != nil {
				return nil, err
			}
			plan.Cells = append(plan.Cells, Cell{
				ID:        fmt.Sprintf("product=%g/policy=%s", prod, col),
				KeyKind:   "cell/futuresim",
				KeyParams: key,
				Engine:    engine,
				run: func(ctx context.Context) (any, error) {
					o, err := np.optionsCtx(ctx)
					if err != nil {
						return nil, err
					}
					mix, err := workload.MixByNumber(np.Mix)
					if err != nil {
						return nil, err
					}
					mc, err := futureSimMachine(o.Machine, prod)
					if err != nil {
						return nil, err
					}
					if _, ok := core.ByName(col); !ok {
						return nil, fmt.Errorf("experiments: unknown policy %q", col)
					}
					R := o.Replications
					rts := make([]float64, R)
					simStats := make([]obs.SimStats, R)
					err = parallel.ForEach(ctx, o.Workers, R, func(ctx context.Context, rep int) error {
						seed := parallel.CellSeed(o.Seed, uint64(rep))
						pol, _ := core.ByName(col)
						r, err := runCell(engine, sched.Config{
							Machine: mc,
							Policy:  pol,
							Apps:    o.apps(mix, seed),
							Seed:    seed,
						})
						if err != nil {
							return fmt.Errorf("experiments: product %v policy %s: %w", prod, col, err)
						}
						rts[rep] = r.MeanResponse()
						simStats[rep] = r.Stats
						return nil
					})
					if err != nil {
						return nil, err
					}
					if o.Stats != nil {
						parallel.Fold(simStats, func(_ int, s obs.SimStats) {
							o.Stats.Add(col, s)
						})
					}
					var mean float64
					for rep := 0; rep < R; rep++ {
						mean += rts[rep] / float64(R)
					}
					return futureSimCellPartial{MeanRTSec: mean}, nil
				},
			})
		}
	}
	plan.merge = func(ctx context.Context, raws []json.RawMessage) (any, error) {
		parts, err := decodeParts[futureSimCellPartial](raws)
		if err != nil {
			return nil, err
		}
		out := FutureSimCampaignResult{Mix: np.Mix, Policies: append([]string(nil), np.Policies...)}
		for prodIdx, prod := range np.Products {
			base := parts[prodIdx*len(cols)].MeanRTSec
			pt := FutureSimCampaignPoint{Product: prod, SimRel: make(map[string]float64)}
			for pi, pol := range np.Policies {
				pt.SimRel[pol] = parts[prodIdx*len(cols)+pi+1].MeanRTSec / base
			}
			out.Points = append(out.Points, pt)
		}
		return out, nil
	}
	return plan, nil
}

// ---- relatedwork -------------------------------------------------------

// relatedWorkCellKey is the cache identity of one Section-8 policy row
// (the kind's mix is fixed at #5).
type relatedWorkCellKey struct {
	Procs    int    `json:"procs"`
	Reps     int    `json:"reps"`
	AppScale int    `json:"app_scale"`
	Seed     uint64 `json:"seed"`
	Policy   string `json:"policy"`
}

// relatedWorkCellPartial is one policy's aggregated row; the merge
// derives the cross-policy gain contrasts.
type relatedWorkCellPartial struct {
	MeanRTSec     float64 `json:"mean_rt_sec"`
	MissSec       float64 `json:"miss_sec"`
	Reallocations int     `json:"reallocations"`
	PctAffinity   float64 `json:"pct_affinity"`
}

func relatedWorkCellPlan(np CampaignParams) (*CellPlan, error) {
	if _, err := np.options(); err != nil {
		return nil, err
	}
	policies := relatedWorkPolicies()
	plan := &CellPlan{Kind: "relatedwork", Params: np}
	for _, polName := range policies {
		polName := polName
		key, err := cellKey(relatedWorkCellKey{
			Procs: np.Procs, Reps: np.Replications, AppScale: np.AppScale,
			Seed: np.Seed, Policy: polName,
		})
		if err != nil {
			return nil, err
		}
		plan.Cells = append(plan.Cells, Cell{
			ID:        "policy=" + polName,
			KeyKind:   "cell/relatedwork",
			KeyParams: key,
			run: func(ctx context.Context) (any, error) {
				o, err := np.optionsCtx(ctx)
				if err != nil {
					return nil, err
				}
				mix, err := workload.MixByNumber(5)
				if err != nil {
					return nil, err
				}
				if _, ok := core.ByName(polName); !ok {
					return nil, fmt.Errorf("experiments: unknown policy %q", polName)
				}
				R := o.Replications
				runs := make([]sched.Result, R)
				err = parallel.ForEach(ctx, o.Workers, R, func(ctx context.Context, rep int) error {
					seed := parallel.CellSeed(o.Seed, uint64(rep))
					pol, _ := core.ByName(polName)
					r, err := runSim(sched.Config{
						Machine: o.Machine,
						Policy:  pol,
						Apps:    o.apps(mix, seed),
						Seed:    seed,
					})
					if err != nil {
						return err
					}
					runs[rep] = r
					return nil
				})
				if err != nil {
					return nil, err
				}
				if o.Stats != nil {
					parallel.Fold(runs, func(_ int, r sched.Result) {
						o.Stats.Add(polName, r.Stats)
					})
				}
				row := relatedWorkRowFrom(polName, runs)
				return relatedWorkCellPartial{
					MeanRTSec:     row.MeanRT,
					MissSec:       row.MissSec,
					Reallocations: row.Reallocations,
					PctAffinity:   row.PctAffinity,
				}, nil
			},
		})
	}
	plan.merge = func(ctx context.Context, raws []json.RawMessage) (any, error) {
		parts, err := decodeParts[relatedWorkCellPartial](raws)
		if err != nil {
			return nil, err
		}
		rows := make([]RelatedWorkRow, len(parts))
		for i, part := range parts {
			rows[i] = RelatedWorkRow{
				Policy:        policies[i],
				MeanRT:        part.MeanRTSec,
				MissSec:       part.MissSec,
				Reallocations: part.Reallocations,
				PctAffinity:   part.PctAffinity,
			}
		}
		return RelatedWorkCampaignResult{Result: relatedWorkDerive(rows)}, nil
	}
	return plan, nil
}
