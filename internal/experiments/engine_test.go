package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/report"
)

// calibrationParams returns CampaignParams pinned to the calibration scale,
// so cell coordinates land exactly on the golden's grid.
func calibrationParams() CampaignParams {
	return CampaignParams{
		Procs:        calibrationProcs,
		Replications: calibrationReps,
		AppScale:     calibrationAppScale,
		Seed:         calibrationSeed,
	}
}

func TestEngineNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"": EngineSim, EngineSim: EngineSim,
		EngineAnalytic: EngineAnalytic, EngineAuto: EngineAuto,
	} {
		got, err := normalizeEngine(in)
		if err != nil || got != want {
			t.Errorf("normalizeEngine(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	_, err := normalizeEngine("warp")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, name := range []string{EngineSim, EngineAnalytic, EngineAuto} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid tier %q", err, name)
		}
	}
}

// Kinds without a simulation grid must reject the analytic tiers instead of
// silently simulating under a lying label.
func TestEngineRejectedOnNonGridKinds(t *testing.T) {
	for _, kind := range []string{"characterize", "table1", "relatedwork"} {
		for _, engine := range []string{EngineAnalytic, EngineAuto} {
			p := CampaignParams{Fast: true, BudgetSec: 0.5, Engine: engine}
			if _, err := Cells(kind, p); err == nil {
				t.Errorf("kind %s accepted engine=%s", kind, engine)
			}
		}
		p := CampaignParams{Fast: true, BudgetSec: 0.5, Engine: EngineSim}
		if _, err := Cells(kind, p); err != nil {
			t.Errorf("kind %s rejected the explicit sim default: %v", kind, err)
		}
	}
}

// The same grid coordinate on different engine tiers must derive different
// cell cache keys: analytic estimates and simulated results never share an
// entry. An auto plan's promoted cells, by contrast, share keys with the
// explicit analytic tier — resolution happens at planning time.
func TestEngineTiersDeriveDistinctCellKeys(t *testing.T) {
	for _, kind := range []string{"compare", "futuresim"} {
		p := calibrationParams()
		if kind == "compare" {
			p.Mix = 5
			p.Policies = []string{"Dyn-Aff"}
		}
		planOf := func(engine string) *CellPlan {
			p := p
			p.Engine = engine
			plan, err := Cells(kind, p)
			if err != nil {
				t.Fatalf("%s engine=%s: %v", kind, engine, err)
			}
			return plan
		}
		sim, ana, auto := planOf(EngineSim), planOf(EngineAnalytic), planOf(EngineAuto)
		for i := range sim.Cells {
			if bytes.Equal(sim.Cells[i].KeyParams, ana.Cells[i].KeyParams) {
				t.Errorf("%s cell %s: sim and analytic share a cache key", kind, sim.Cells[i].ID)
			}
			if sim.Cells[i].Engine != EngineSim || ana.Cells[i].Engine != EngineAnalytic {
				t.Errorf("%s cell %s: engines %q/%q, want sim/analytic",
					kind, sim.Cells[i].ID, sim.Cells[i].Engine, ana.Cells[i].Engine)
			}
			got := auto.Cells[i]
			switch got.Engine {
			case EngineAnalytic:
				if !bytes.Equal(got.KeyParams, ana.Cells[i].KeyParams) {
					t.Errorf("%s cell %s: promoted auto cell does not share the analytic key", kind, got.ID)
				}
			case EngineSim:
				if !bytes.Equal(got.KeyParams, sim.Cells[i].KeyParams) {
					t.Errorf("%s cell %s: unpromoted auto cell does not share the sim key", kind, got.ID)
				}
			default:
				t.Errorf("%s cell %s: unresolved engine %q in plan", kind, got.ID, got.Engine)
			}
		}
	}
}

// Auto must select the analytic tier exactly inside the promotion envelope:
// never outside it, and (on the calibrated grid) everywhere inside it.
func TestAutoSelectsAnalyticOnlyInsideEnvelope(t *testing.T) {
	env := analytic.DefaultEnvelope()
	if env.Size() == 0 {
		t.Fatal("checked-in golden promotes no cells")
	}

	p := calibrationParams()
	p.Engine = EngineAuto
	plan, err := Cells("compare", p)
	if err != nil {
		t.Fatal(err)
	}
	mixNumbers := allMixNumbers()
	policies := plan.Params.Policies
	if len(plan.Cells) != len(mixNumbers)*len(policies) {
		t.Fatalf("plan has %d cells, want %d", len(plan.Cells), len(mixNumbers)*len(policies))
	}
	analyticCells := 0
	for i, cell := range plan.Cells {
		mix := mixNumbers[i/len(policies)]
		pol := policies[i%len(policies)]
		coord := compareCellCoord(calibrationProcs, calibrationReps,
			calibrationAppScale, calibrationSeed, mix, pol)
		want := EngineSim
		if env.Promoted(coord) {
			want = EngineAnalytic
		}
		if cell.Engine != want {
			t.Errorf("%s: auto resolved %q, want %q (promoted=%v)",
				cell.ID, cell.Engine, want, env.Promoted(coord))
		}
		if cell.Engine == EngineAnalytic {
			analyticCells++
		}
	}
	if analyticCells == 0 {
		t.Error("auto promoted nothing on the calibrated compare grid")
	}

	// The calibration grid was measured at seed 1; any other seed is an
	// uncalibrated coordinate, so auto must fall back to the simulator for
	// every cell.
	off := p
	off.Seed = calibrationSeed + 1
	offPlan, err := Cells("compare", off)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range offPlan.Cells {
		if cell.Engine != EngineSim {
			t.Errorf("%s: auto selected %q outside the calibrated grid", cell.ID, cell.Engine)
		}
	}
}

// The analytic estimator is deterministic: the same cell must produce
// byte-identical canonical JSON on repeated runs.
func TestAnalyticCellBytesStable(t *testing.T) {
	p := calibrationParams()
	p.Mix = 5
	p.Policies = []string{"Dyn-Aff"}
	p.Engine = EngineAnalytic
	plan, err := Cells("compare", p)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		res, err := plan.Cells[0].Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := report.CanonicalJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); !bytes.Equal(got, first) {
			t.Fatalf("analytic cell bytes unstable on rerun %d:\n%s\nvs\n%s", i, first, got)
		}
	}
}

// Every golden-promoted cell's analytic mean response time must still be
// within the golden's tolerance of the sim value recorded at -write time.
// This is the cheap half of `analyticcalib -check`: it re-runs only the
// analytic side, trusting the golden's sim numbers.
func TestAnalyticAccuracyWithinGoldenTolerance(t *testing.T) {
	golden := analytic.DefaultTable()
	promoted := 0
	for _, cell := range golden.Cells {
		if !cell.Promoted {
			continue
		}
		promoted++
		m, err := AnalyticCellMetrics(context.Background(), cell)
		if err != nil {
			t.Fatalf("%s: %v", cell.Coord, err)
		}
		sim := cell.Metrics[analytic.PromotionMetric].Sim
		if re := calibrationRelErr(sim, m[analytic.PromotionMetric]); re > golden.TolRelErr {
			t.Errorf("%s: analytic mean RT drifted to %.1f%% rel err (tolerance %.0f%%)",
				cell.Coord, 100*re, 100*golden.TolRelErr)
		}
	}
	if promoted == 0 {
		t.Fatal("golden promotes no cells")
	}
}

// The calibration grid and the checked-in golden must agree coordinate for
// coordinate: a drifted grid would silently shrink (or misdirect) the
// envelope auto trusts.
func TestCalibrationGridMatchesGolden(t *testing.T) {
	grid := CalibrationGrid()
	coords := make(map[string]bool, len(grid))
	for _, c := range grid {
		if coords[c.Coord] {
			t.Errorf("duplicate calibration coordinate %s", c.Coord)
		}
		coords[c.Coord] = true
	}
	golden := analytic.DefaultTable()
	if len(golden.Cells) != len(grid) {
		t.Errorf("golden has %d cells, grid has %d; regenerate with analyticcalib -write",
			len(golden.Cells), len(grid))
	}
	for _, g := range golden.Cells {
		if !coords[g.Coord] {
			t.Errorf("golden cell %s is no longer on the calibration grid", g.Coord)
		}
	}
}

// BenchmarkFutureSimEngines pits the two tiers against each other on the
// registered futuresim campaign at the calibration scale — the measured
// speedup the analytic tier exists for (the acceptance floor is 10x;
// sequential runs measure ~100x).
func BenchmarkFutureSimEngines(b *testing.B) {
	c, ok := CampaignByKind("futuresim")
	if !ok {
		b.Fatal("futuresim kind not registered")
	}
	for _, engine := range []string{EngineSim, EngineAnalytic} {
		engine := engine
		b.Run(engine, func(b *testing.B) {
			p := calibrationParams()
			p.Mix = 5
			p.Engine = engine
			p.Workers = 1 // sequential: compare engine cost, not parallelism
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
