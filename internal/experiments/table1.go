package experiments

import (
	"context"
	"sort"

	"repro/internal/measure"
	"repro/internal/memtrace"
	"repro/internal/report"
	"repro/internal/simtime"
)

// Table1 runs the Section-4 penalty measurement protocol over the three
// applications and the paper's three rescheduling intervals, producing the
// data behind the paper's Table 1. It is Table1Ctx without cancellation.
func Table1(opts Options) (measure.Table1, error) {
	return Table1Ctx(context.Background(), opts)
}

// Table1Ctx is Table1 with cancellation; the (Q, application) measurement
// cells run on opts.Workers workers.
func Table1Ctx(ctx context.Context, opts Options) (measure.Table1, error) {
	if err := opts.Validate(); err != nil {
		return measure.Table1{}, err
	}
	mc := opts.Machine
	mc.Processors = 1 // the paper's measurement uses a single processor
	return measure.BuildTable1Ctx(ctx, mc, memtrace.Patterns(), measure.DefaultQs(), opts.MeasureBudget, opts.Seed, opts.Workers)
}

// Table1Report renders the measured penalties in the paper's Table-1
// layout: one block per Q; rows are measured applications; the first column
// is P^NA and the rest are P^A against each intervening application.
func Table1Report(t1 measure.Table1) []report.Table {
	var out []report.Table
	qs := append([]simtime.Duration(nil), t1.Qs...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		t := report.Table{
			Title:   "Table 1 — P^NA and P^A (µs per switch), Q = " + q.String(),
			Headers: []string{"measured", "P^NA"},
		}
		for _, iv := range t1.Apps {
			t.Headers = append(t.Headers, "P^A/"+iv)
		}
		for _, app := range t1.Apps {
			pen := t1.Cells[q][app]
			row := []string{app, report.F(pen.PNA.Micros(), 0)}
			for _, iv := range t1.Apps {
				row = append(row, report.F(pen.PA[iv].Micros(), 0))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// PenaltyFor returns (P^A, P^NA) in seconds for the given measured
// application, averaged over the given intervening applications, at the
// tabulated Q nearest to interval. It is the parameter-extraction step of
// Section 7.3: the scheduling experiments report each job's observed
// reallocation interval, and the penalties measured at the closest Q apply.
func PenaltyFor(t1 measure.Table1, app string, intervening []string, interval simtime.Duration) (pa, pna float64) {
	if len(t1.Qs) == 0 {
		return 0, 0
	}
	best := t1.Qs[0]
	for _, q := range t1.Qs[1:] {
		if absDur(q-interval) < absDur(best-interval) {
			best = q
		}
	}
	pen, ok := t1.Cells[best][app]
	if !ok {
		return 0, 0
	}
	pna = pen.PNA.SecondsF()
	if len(intervening) == 0 {
		intervening = t1.Apps
	}
	n := 0
	for _, iv := range intervening {
		if v, ok := pen.PA[iv]; ok {
			pa += v.SecondsF()
			n++
		}
	}
	if n > 0 {
		pa /= float64(n)
	}
	return pa, pna
}

func absDur(d simtime.Duration) simtime.Duration {
	if d < 0 {
		return -d
	}
	return d
}
