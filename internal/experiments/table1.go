package experiments

import (
	"context"
	"sort"

	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/memtrace"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

// Table1 runs the Section-4 penalty measurement protocol over the three
// applications and the paper's three rescheduling intervals, producing the
// data behind the paper's Table 1. It is Table1Ctx without cancellation.
func Table1(opts Options) (measure.Table1, error) {
	return Table1Ctx(context.Background(), opts)
}

// Table1Ctx is Table1 with cancellation; the (Q, application) measurement
// cells run on opts.Workers workers.
func Table1Ctx(ctx context.Context, opts Options) (measure.Table1, error) {
	if err := opts.Validate(); err != nil {
		return measure.Table1{}, err
	}
	mc := opts.Machine
	mc.Processors = 1 // the paper's measurement uses a single processor
	t1, err := measure.BuildTable1Ctx(ctx, mc, memtrace.Patterns(), measure.DefaultQs(), opts.MeasureBudget, opts.Seed, opts.Workers)
	if err != nil {
		return t1, err
	}
	if opts.Stats != nil {
		opts.Stats.Add("measure", table1Stats(mc, t1, opts.MeasureBudget))
	}
	return t1, nil
}

// table1Stats derives a SimStats from the Section-4 measurement protocol.
// The protocol has no event queue, so the dispatch counters map onto its
// regimes instead: every migrating-regime switch is a migration charging
// P^NA (with a cache flush, as the paper streams through memory), and
// every multiprogrammed-regime switch charges P^A; the penalty time is
// the regime's whole response-time delta over the stationary baseline.
// Cells are folded in (Q, measured application) grid order, so the totals
// are identical at every worker count.
func table1Stats(mc machine.Config, t1 measure.Table1, budget simtime.Duration) obs.SimStats {
	var s obs.SimStats
	for _, q := range t1.Qs {
		for _, app := range t1.Apps {
			s.Merge(table1CellStats(mc, t1.Cells[q][app], t1.Apps, budget))
		}
	}
	return s
}

// table1CellStats is one (Q, measured application) cell's contribution to
// the protocol's SimStats; table1Stats sums these in grid order, and the
// cell execution path folds them one cell at a time. All fields are
// integer, so the totals agree regardless of grouping.
func table1CellStats(mc machine.Config, pen measure.Penalties, apps []string, budget simtime.Duration) obs.SimStats {
	var s obs.SimStats
	addRun := func(r measure.RunResult) {
		s.Runs++
		s.WorkNs += int64(budget)
		s.SwitchNs += int64(r.Switches) * int64(mc.SwitchPath)
		s.MissNs += int64(r.Misses) * int64(mc.LineFill)
	}
	delta := func(r, base measure.RunResult) int64 {
		if d := int64(r.ResponseTime - base.ResponseTime); d > 0 {
			return d
		}
		return 0
	}
	addRun(pen.Stationary)
	addRun(pen.Migrating)
	s.Reallocations += uint64(pen.Migrating.Switches)
	s.Migrations += uint64(pen.Migrating.Switches)
	s.PNACharges += uint64(pen.Migrating.Switches)
	s.Flushes += uint64(pen.Migrating.Switches)
	s.PenaltyNs += delta(pen.Migrating, pen.Stationary)
	for _, iv := range apps {
		multi := pen.Multi[iv]
		addRun(multi)
		s.Reallocations += uint64(multi.Switches)
		s.PACharges += uint64(multi.Switches)
		s.PenaltyNs += delta(multi, pen.Stationary)
	}
	return s
}

// Table1Report renders the measured penalties in the paper's Table-1
// layout: one block per Q; rows are measured applications; the first column
// is P^NA and the rest are P^A against each intervening application.
func Table1Report(t1 measure.Table1) []report.Table {
	var out []report.Table
	qs := append([]simtime.Duration(nil), t1.Qs...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		t := report.Table{
			Title:   "Table 1 — P^NA and P^A (µs per switch), Q = " + q.String(),
			Headers: []string{"measured", "P^NA"},
		}
		for _, iv := range t1.Apps {
			t.Headers = append(t.Headers, "P^A/"+iv)
		}
		for _, app := range t1.Apps {
			pen := t1.Cells[q][app]
			row := []string{app, report.F(pen.PNA.Micros(), 0)}
			for _, iv := range t1.Apps {
				row = append(row, report.F(pen.PA[iv].Micros(), 0))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// PenaltyFor returns (P^A, P^NA) in seconds for the given measured
// application, averaged over the given intervening applications, at the
// tabulated Q nearest to interval. It is the parameter-extraction step of
// Section 7.3: the scheduling experiments report each job's observed
// reallocation interval, and the penalties measured at the closest Q apply.
func PenaltyFor(t1 measure.Table1, app string, intervening []string, interval simtime.Duration) (pa, pna float64) {
	if len(t1.Qs) == 0 {
		return 0, 0
	}
	best := t1.Qs[0]
	for _, q := range t1.Qs[1:] {
		if absDur(q-interval) < absDur(best-interval) {
			best = q
		}
	}
	pen, ok := t1.Cells[best][app]
	if !ok {
		return 0, 0
	}
	pna = pen.PNA.SecondsF()
	if len(intervening) == 0 {
		intervening = t1.Apps
	}
	n := 0
	for _, iv := range intervening {
		if v, ok := pen.PA[iv]; ok {
			pa += v.SecondsF()
			n++
		}
	}
	if n > 0 {
		pa /= float64(n)
	}
	return pa, pna
}

func absDur(d simtime.Duration) simtime.Duration {
	if d < 0 {
		return -d
	}
	return d
}
