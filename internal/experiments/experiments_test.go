package experiments

import (
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/workload"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := FastOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Replications = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero replications accepted")
	}
	bad = DefaultOptions()
	bad.MeasureBudget = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad = DefaultOptions()
	bad.AppScale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestDefaultMachineIs16ProcSymmetry(t *testing.T) {
	o := DefaultOptions()
	if o.Machine.Processors != 16 {
		t.Errorf("processors = %d, want 16 (paper's experiment size)", o.Machine.Processors)
	}
	if o.Machine.Cache.SizeBytes != 64*1024 {
		t.Errorf("cache = %d, want Symmetry's 64KB", o.Machine.Cache.SizeBytes)
	}
}

func TestScaledApps(t *testing.T) {
	o := FastOptions()
	mix, _ := workload.MixByNumber(6)
	apps := o.apps(mix, 1)
	if len(apps) != 3 {
		t.Fatalf("apps = %d", len(apps))
	}
	full := DefaultOptions().apps(mix, 1)
	for i := range apps {
		if apps[i].Graph.NumThreads() >= full[i].Graph.NumThreads() {
			t.Errorf("%s: scaled app not smaller (%d vs %d threads)",
				apps[i].Name, apps[i].Graph.NumThreads(), full[i].Graph.NumThreads())
		}
	}
}

func TestCharacterize(t *testing.T) {
	chars, err := Characterize(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 3 {
		t.Fatalf("characterized %d apps", len(chars))
	}
	names := map[string]bool{}
	for _, c := range chars {
		names[c.Name] = true
		if c.ElapsedSec <= 0 || c.TotalWorkSec <= 0 {
			t.Errorf("%s: non-positive times", c.Name)
		}
		if c.AvgDemand <= 0 || c.AvgDemand > 16 {
			t.Errorf("%s: avg demand %v out of range", c.Name, c.AvgDemand)
		}
		sum := 0.0
		for _, p := range c.ProfilePct {
			sum += p
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: profile sums to %v%%", c.Name, sum)
		}
	}
	for _, want := range []string{"MVA", "MATRIX", "GRAVITY"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	// Report renderers produce non-empty output.
	var b strings.Builder
	tab := CharacterTable(chars)
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	prof := ProfileTable(chars)
	if err := prof.Write(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Error("empty reports")
	}
}

func TestTable1SmallBudget(t *testing.T) {
	opts := FastOptions()
	t1, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Apps) != 3 || len(t1.Qs) != 3 {
		t.Fatalf("table dims: %d apps, %d qs", len(t1.Apps), len(t1.Qs))
	}
	tabs := Table1Report(t1)
	if len(tabs) != 3 {
		t.Fatalf("reports = %d", len(tabs))
	}
	var b strings.Builder
	for _, tab := range tabs {
		if err := tab.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(b.String(), "P^NA") {
		t.Error("report missing P^NA column")
	}
}

func TestPenaltyFor(t *testing.T) {
	opts := FastOptions()
	t1, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	pa, pna := PenaltyFor(t1, "MVA", []string{"MATRIX"}, 400*simtime.Millisecond)
	if pna <= 0 || pa <= 0 {
		t.Fatalf("penalties not positive: pa=%v pna=%v", pa, pna)
	}
	if pa >= pna {
		t.Errorf("P^A %v >= P^NA %v", pa, pna)
	}
	// Nearest-Q selection picks larger penalties for larger intervals.
	_, pnaSmall := PenaltyFor(t1, "MVA", nil, 25*simtime.Millisecond)
	if pnaSmall >= pna {
		t.Errorf("P^NA at Q=25 (%v) not below Q=400 (%v)", pnaSmall, pna)
	}
	// Unknown app yields zeros, empty table yields zeros.
	if pa, pna := PenaltyFor(t1, "NOPE", nil, 0); pa != 0 || pna != 0 {
		t.Error("unknown app gave penalties")
	}
}

// The big one: the end-to-end pipeline at test scale, checking the paper's
// qualitative conclusions hold.
func TestPipelineQualitative(t *testing.T) {
	opts := FastOptions()
	mixes := []workload.Mix{
		{Number: 4, Gravity: 2},
		{Number: 5, Matrix: 1, Gravity: 1},
	}
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay", "Dyn-Aff-NoPri"}
	cr, err := ComparePolicies(opts, mixes, policies)
	if err != nil {
		t.Fatal(err)
	}

	// Paper conclusion 1: dynamic policies beat (or at worst match)
	// Equipartition on mean response time.
	for _, mix := range mixes {
		for _, pol := range []string{"Dynamic", "Dyn-Aff"} {
			rel, err := cr.Relative(mix.Number, pol, "Equipartition")
			if err != nil {
				t.Fatal(err)
			}
			mean := 0.0
			for _, r := range rel {
				mean += r
			}
			mean /= float64(len(rel))
			if mean > 1.02 {
				t.Errorf("mix #%d %s mean relative RT %.3f > 1", mix.Number, pol, mean)
			}
		}
	}

	// Paper conclusion 2: the dynamic variants are nearly identical today.
	relDyn, _ := cr.Relative(5, "Dynamic", "Equipartition")
	relAff, _ := cr.Relative(5, "Dyn-Aff", "Equipartition")
	for i := range relDyn {
		diff := relDyn[i] - relAff[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.1 {
			t.Errorf("job %d: Dynamic %.3f vs Dyn-Aff %.3f differ by more than 10%%",
				i, relDyn[i], relAff[i])
		}
	}

	// Reports render.
	var b strings.Builder
	fig5, err := cr.Figure5Report([]string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fig5.Write(&b); err != nil {
		t.Fatal(err)
	}
	t3, err := cr.Table3Report(5, []string{"Dynamic", "Dyn-Aff"})
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.Write(&b); err != nil {
		t.Fatal(err)
	}
	t4, err := cr.Table4Report([]int{4}, "Dyn-Aff", "Dyn-Aff-NoPri")
	if err != nil {
		t.Fatal(err)
	}
	if err := t4.Write(&b); err != nil {
		t.Fatal(err)
	}

	// Future extrapolation end to end.
	t1, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := FutureScenarios(cr, t1)
	if err != nil {
		t.Fatal(err)
	}
	key := ScenarioKey{Mix: 5, App: "GRAVITY"}
	sc, ok := scen[key]
	if !ok {
		t.Fatalf("no scenario %v; have %v", key, len(scen))
	}
	// Paper conclusion 3: Dynamic's relative RT rises with the
	// speed×cache product.
	ys, err := sc.SweepProduct("Dynamic", []float64{1, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if ys[1] <= ys[0] {
		t.Errorf("Dynamic relative RT did not rise: %v", ys)
	}
	charts, err := FutureCharts(cr, scen, []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != len(mixes) {
		t.Fatalf("charts = %d, want %d", len(charts), len(mixes))
	}
	for _, ch := range charts {
		if err := ch.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	opts := FastOptions()
	if _, err := ComparePolicies(opts, nil, []string{"Dynamic"}); err == nil {
		t.Error("no mixes accepted")
	}
	if _, err := ComparePolicies(opts, workload.Mixes()[:1], nil); err == nil {
		t.Error("no policies accepted")
	}
	if _, err := ComparePolicies(opts, workload.Mixes()[:1], []string{"bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	mix := workload.Mix{Number: 9}
	if _, err := ComparePolicies(opts, []workload.Mix{mix}, []string{"Dynamic"}); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestRelativeErrors(t *testing.T) {
	opts := FastOptions()
	cr, err := ComparePolicies(opts, []workload.Mix{{Number: 1, MVA: 2}}, []string{"Equipartition", "Dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Relative(9, "Dynamic", "Equipartition"); err == nil {
		t.Error("missing mix accepted")
	}
	if _, err := cr.Relative(1, "bogus", "Equipartition"); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := cr.Relative(1, "Dynamic", "bogus"); err == nil {
		t.Error("missing baseline accepted")
	}
	if _, err := cr.Table3Report(9, nil); err == nil {
		t.Error("Table3 for missing mix accepted")
	}
	if _, err := cr.Table4Report([]int{9}, "Dynamic", "Equipartition"); err == nil {
		t.Error("Table4 for missing mix accepted")
	}
}

func TestFigureApp(t *testing.T) {
	cases := map[int]string{1: "MVA", 2: "MATRIX", 3: "GRAVITY", 4: "GRAVITY", 5: "GRAVITY", 6: "GRAVITY"}
	for _, m := range workload.Mixes() {
		if got := FigureApp(m); got != cases[m.Number] {
			t.Errorf("FigureApp(#%d) = %s, want %s", m.Number, got, cases[m.Number])
		}
	}
}
