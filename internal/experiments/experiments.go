// Package experiments wires the substrate packages into the paper's
// experiments: one driver per table and figure, consumed by the command-line
// tools, the examples, and the benchmark harness.
//
// The experiment inventory (see DESIGN.md for the full index):
//
//   - Characterize      → Figures 2–4 (application characteristics)
//   - Table1            → Table 1 (P^A and P^NA per application and Q)
//   - ComparePolicies   → Figures 5 and 6, Tables 3 and 4
//   - FutureScenarios   → Figures 8–13 (model extrapolation)
package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an experiment campaign.
type Options struct {
	// Machine is the hardware model. The paper's experiments use the
	// Symmetry restricted to 16 processors.
	Machine machine.Config
	// Seed is the campaign's root random seed.
	Seed uint64
	// Replications is the number of independent runs averaged per
	// (mix, policy) cell.
	Replications int
	// MeasureBudget is the per-run compute budget for the Table-1
	// penalty measurements.
	MeasureBudget simtime.Duration
	// ExtractionQ is the Table-1 rescheduling interval whose penalties
	// parameterize the future model (Section 7.3). Zero selects, per job,
	// the tabulated Q nearest its observed reallocation interval; the
	// default follows the paper and uses one fixed Q for every policy —
	// 400 ms, the tabulated interval closest to the dynamic policies'
	// observed 240-780 ms reallocation intervals.
	ExtractionQ simtime.Duration
	// AppScale shrinks the applications for fast test runs: 1 = paper
	// scale, larger divisors shrink thread counts.
	AppScale int
	// Workers bounds the number of simulation cells run concurrently.
	// Zero (the default) uses runtime.GOMAXPROCS(0); one forces a fully
	// sequential campaign. Results are bitwise identical for every worker
	// count: each cell's seed is derived from Seed and the cell's grid
	// coordinates, never from execution order.
	Workers int
	// Stats, when non-nil, collects per-run simulation statistics
	// (reallocations, P^A/P^NA charges, penalty time, …) across the
	// campaign's cells, folded in deterministic grid order after each
	// parallel phase so the totals are worker-count independent. Stats is
	// out-of-band telemetry: it never feeds a result body or a result-
	// cache key, and leaving it nil costs nothing.
	Stats *obs.CampaignStats
	// Engine selects the per-cell execution tier for the grid-shaped
	// campaigns (EngineSim, EngineAnalytic, or EngineAuto; empty means
	// EngineSim). Non-grid experiments (Table1, Characterize, RelatedWork,
	// MPLSweep) always simulate and ignore it.
	Engine string
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	m := machine.Symmetry()
	m.Processors = 16 // the paper runs its workloads on 16 processors
	return Options{
		Machine:       m,
		Seed:          1,
		Replications:  5,
		MeasureBudget: 20 * simtime.Second,
		ExtractionQ:   400 * simtime.Millisecond,
		AppScale:      1,
	}
}

// FastOptions returns a configuration for quick smoke runs and unit tests:
// scaled-down applications, fewer replications, shorter measurements.
func FastOptions() Options {
	o := DefaultOptions()
	o.Replications = 2
	o.MeasureBudget = 4 * simtime.Second
	o.AppScale = 4
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if err := o.Machine.Validate(); err != nil {
		return err
	}
	if o.Replications < 1 {
		return fmt.Errorf("experiments: need at least one replication")
	}
	if o.MeasureBudget <= 0 {
		return fmt.Errorf("experiments: non-positive measurement budget")
	}
	if o.AppScale < 1 {
		return fmt.Errorf("experiments: AppScale must be >= 1")
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be >= 0, got %d", o.Workers)
	}
	if _, err := normalizeEngine(o.Engine); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// engine returns the normalized engine tier (Validate has already rejected
// unknown values).
func (o Options) engine() string {
	e, err := normalizeEngine(o.Engine)
	if err != nil {
		return EngineSim
	}
	return e
}

// apps instantiates a mix's applications at the configured scale. seed
// feeds GRAVITY's thread-time jitter so replications differ.
func (o Options) apps(m workload.Mix, seed uint64) []workload.App {
	if o.AppScale <= 1 {
		return m.Apps(seed)
	}
	// Scaled-down instances: same structure, fewer/shorter threads.
	var out []workload.App
	s := o.AppScale
	for i := 0; i < m.MVA; i++ {
		out = append(out, workload.MVASized(max(4, 24/s*2), 180*simtime.Millisecond))
	}
	for i := 0; i < m.Matrix; i++ {
		out = append(out, workload.MatrixSized(max(4, 22/s*2), 850*simtime.Millisecond/simtime.Duration(s)))
	}
	for i := 0; i < m.Gravity; i++ {
		out = append(out, workload.GravitySized(max(2, 28/s), 128, 200*simtime.Millisecond,
			20*simtime.Millisecond, seed+uint64(i)*0x9e3779b9))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// JobSummary aggregates one job's metrics across replications of one
// (mix, policy) cell.
type JobSummary struct {
	// App names the application type.
	App string
	// RT collects per-replication response times in seconds.
	RT *stats.Sample
	// The remaining fields are replication means.
	WorkSec       float64 // processor-seconds of compute
	WasteSec      float64 // processor-seconds held idle
	MissSec       float64 // processor-seconds stalled on misses
	SwitchSec     float64 // processor-seconds of switch overhead
	AvgAlloc      float64
	Reallocations float64
	PctAffinity   float64
	IntervalMs    float64 // mean per-processor reallocation interval
}

// MeanRT returns the mean response time in seconds.
func (s JobSummary) MeanRT() float64 { return s.RT.Mean() }
