package experiments

import (
	"fmt"

	"repro/internal/core"
)

// ParamError reports one invalid campaign parameter by its wire-level
// field path ("params.mix", "params.policies[1]", ...), so API clients
// can point at the offending field instead of parsing prose.
type ParamError struct {
	Field string
	Msg   string
}

// Error renders the path and the reason.
func (e *ParamError) Error() string {
	return fmt.Sprintf("experiments: invalid %s: %s", e.Field, e.Msg)
}

// ParamSpec describes one wire parameter of a campaign kind: its JSON
// name, type, default after normalization, and the allowed range or value
// set where one exists. The service's GET /v1/campaigns listing exposes
// these so clients can build requests without reading the Go source.
type ParamSpec struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Default any      `json:"default"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	// Allowed enumerates the legal values of a string-valued parameter
	// (or of each element, for a list parameter).
	Allowed     []string `json:"allowed,omitempty"`
	Description string   `json:"description"`
}

func limit(v float64) *float64 { return &v }

// ParamSchema returns the parameters the kind consumes, in a fixed order:
// the shared knobs first, then the kind's own. Defaults mirror what
// Normalize makes explicit, so a request of {} normalizes to exactly
// these values.
func (c Campaign) ParamSchema() []ParamSpec {
	specs := []ParamSpec{
		{Name: "fast", Type: "bool", Default: false,
			Description: "select the scaled-down fast preset (reps=2, budget_sec=4, app_scale=4); folded into the other fields by normalization"},
		{Name: "procs", Type: "int", Default: 16, Min: limit(1),
			Description: "simulated machine processor count"},
		{Name: "seed", Type: "uint", Default: 1, Min: limit(1),
			Description: "campaign root seed (0 selects the default)"},
		{Name: "workers", Type: "int", Default: 0, Min: limit(0),
			Description: "concurrent simulation cells (0 = all CPUs); results are bitwise identical at every worker count, so workers is never part of the cache identity"},
	}
	reps := ParamSpec{Name: "reps", Type: "int", Default: 5, Min: limit(1),
		Description: "replications per simulation cell"}
	appScale := ParamSpec{Name: "app_scale", Type: "int", Default: 1, Min: limit(1),
		Description: "application shrink factor for quick runs"}
	budget := ParamSpec{Name: "budget_sec", Type: "float", Default: 20.0, Min: limit(0.4),
		Description: "Table-1 per-run compute budget in simulated seconds (must cover at least one 400 ms quantum)"}
	policies := func(def []string) ParamSpec {
		return ParamSpec{Name: "policies", Type: "[]string", Default: def, Allowed: core.PolicyNames(),
			Description: "policy list, in result order"}
	}
	engine := ParamSpec{Name: "engine", Type: "string", Default: EngineSim,
		Allowed: []string{EngineSim, EngineAnalytic, EngineAuto},
		Description: "per-cell execution tier: sim runs the discrete-event simulator everywhere, " +
			"analytic the fast fluid estimator everywhere, auto promotes to analytic only inside " +
			"the differentially validated envelope; part of the cache identity"}
	switch c.Kind {
	case "characterize", "relatedwork":
		specs = append(specs, reps, appScale)
	case "table1":
		specs = append(specs, budget)
	case "compare":
		specs = append(specs, reps, appScale,
			ParamSpec{Name: "mix", Type: "int", Default: 0, Min: limit(0), Max: limit(6),
				Description: "restrict to one workload mix (1-6); 0 runs all six"},
			policies(defaultComparePolicies()), engine)
	case "future":
		specs = append(specs, reps, appScale, budget, policies(defaultDynamicPolicies()),
			ParamSpec{Name: "max_product", Type: "float", Default: 4096.0, Min: limit(1),
				Description: "upper bound of the speed*cache product axis"},
			engine)
	case "futuresim":
		specs = append(specs, reps, appScale,
			ParamSpec{Name: "mix", Type: "int", Default: 5, Min: limit(1), Max: limit(6),
				Description: "the workload mix simulated on the scaled machines"},
			policies(defaultDynamicPolicies()),
			ParamSpec{Name: "products", Type: "[]float", Default: []float64{1, 16, 64, 256, 1024}, Min: limit(1),
				Description: "speed*cache products to simulate (each >= 1)"},
			engine)
	}
	return specs
}
