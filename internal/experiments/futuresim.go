package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// FutureSimPoint compares, at one speed×cache product, the analytic model's
// predicted relative response time with the value obtained by actually
// simulating the scaled machine.
type FutureSimPoint struct {
	Product float64
	// SimRel is the simulated relative response time (policy mean RT /
	// Equipartition mean RT) on the scaled machine.
	SimRel map[string]float64
}

// FutureSimulated re-runs the scheduling simulation on scaled machines
// (speed = cache = √product, the Figure 8-13 axis) — a validation the paper
// could not perform, since its future machines did not exist. The paper's
// analytic model assumes future applications grow into their caches (its
// P^NA × √cache term); the simulated applications keep 1991 footprints, so
// the simulation brackets the model from the optimistic side: its relative
// response times should rise no faster than the model's.
func FutureSimulated(opts Options, mix workload.Mix, policies []string, products []float64) ([]FutureSimPoint, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	var out []FutureSimPoint
	for _, prod := range products {
		if prod < 1 {
			return nil, fmt.Errorf("experiments: product %v below 1", prod)
		}
		factor := math.Sqrt(prod)
		cacheScale := int(factor + 0.5)
		if cacheScale < 1 {
			cacheScale = 1
		}
		scaled, err := opts.Machine.Scaled(factor, cacheScale)
		if err != nil {
			return nil, err
		}
		pt := FutureSimPoint{Product: prod, SimRel: make(map[string]float64)}
		meanRT := func(polName string) (float64, error) {
			var mean float64
			for rep := 0; rep < opts.Replications; rep++ {
				seed := opts.Seed + uint64(rep)*0x1000
				pol, ok := core.ByName(polName)
				if !ok {
					return 0, fmt.Errorf("experiments: unknown policy %q", polName)
				}
				r, err := sched.Run(sched.Config{
					Machine: scaled,
					Policy:  pol,
					Apps:    opts.apps(mix, seed),
					Seed:    seed,
				})
				if err != nil {
					return 0, err
				}
				mean += r.MeanResponse() / float64(opts.Replications)
			}
			return mean, nil
		}
		base, err := meanRT("Equipartition")
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			rt, err := meanRT(pol)
			if err != nil {
				return nil, err
			}
			pt.SimRel[pol] = rt / base
		}
		out = append(out, pt)
	}
	return out, nil
}

// FutureSimTable renders the simulated-future comparison against the
// analytic model's predictions for the same products.
func FutureSimTable(points []FutureSimPoint, modelRel map[string][]float64, policies []string) report.Table {
	t := report.Table{
		Title:   "Future machines: simulated relative RT vs analytic model",
		Headers: []string{"product"},
	}
	for _, p := range policies {
		t.Headers = append(t.Headers, p+" (sim)", p+" (model)")
	}
	for i, pt := range points {
		row := []string{report.F(pt.Product, 0)}
		for _, p := range policies {
			row = append(row, report.F(pt.SimRel[p], 3))
			if ys, ok := modelRel[p]; ok && i < len(ys) {
				row = append(row, report.F(ys[i], 3))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
