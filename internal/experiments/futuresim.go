package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// FutureSimPoint compares, at one speed×cache product, the analytic model's
// predicted relative response time with the value obtained by actually
// simulating the scaled machine.
type FutureSimPoint struct {
	Product float64
	// SimRel is the simulated relative response time (policy mean RT /
	// Equipartition mean RT) on the scaled machine.
	SimRel map[string]float64
}

// FutureSimulated re-runs the scheduling simulation on scaled machines
// (speed = cache = √product, the Figure 8-13 axis) — a validation the paper
// could not perform, since its future machines did not exist. The paper's
// analytic model assumes future applications grow into their caches (its
// P^NA × √cache term); the simulated applications keep 1991 footprints, so
// the simulation brackets the model from the optimistic side: its relative
// response times should rise no faster than the model's.
func FutureSimulated(opts Options, mix workload.Mix, policies []string, products []float64) ([]FutureSimPoint, error) {
	return FutureSimulatedCtx(context.Background(), opts, mix, policies, products)
}

// FutureSimulatedCtx is FutureSimulated with cancellation, fanning the
// (product, policy, replication) cells out over opts.Workers workers. The
// Equipartition baseline joins the policy axis as column zero. Replication
// seeds are shared across products and policies — parallel.CellSeed of the
// replication alone — so every point of every curve observes the same
// workload draws, pairing the curves exactly as the sequential code did.
func FutureSimulatedCtx(ctx context.Context, opts Options, mix workload.Mix, policies []string, products []float64) ([]FutureSimPoint, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	// Resolve every scaled machine and policy name before the fan-out, so
	// configuration errors surface immediately and deterministically.
	scaled := make([]machine.Config, len(products))
	for i, prod := range products {
		mc, err := futureSimMachine(opts.Machine, prod)
		if err != nil {
			return nil, err
		}
		scaled[i] = mc
	}
	cols := append([]string{"Equipartition"}, policies...)
	for _, polName := range cols {
		if _, ok := core.ByName(polName); !ok {
			return nil, fmt.Errorf("experiments: unknown policy %q", polName)
		}
	}

	// One slot per (product, column, replication) mean-response sample;
	// idx = (prodIdx*len(cols) + col)*R + rep.
	R := opts.Replications
	rts := make([]float64, len(products)*len(cols)*R)
	simStats := make([]obs.SimStats, len(rts))
	err := parallel.ForEach(ctx, opts.Workers, len(rts), func(ctx context.Context, idx int) error {
		rep := idx % R
		col := idx / R % len(cols)
		prodIdx := idx / R / len(cols)
		seed := parallel.CellSeed(opts.Seed, uint64(rep))
		pol, _ := core.ByName(cols[col])
		// Same coordinate-driven engine resolution as the cell planner, so
		// engine=auto picks identical tiers on both execution paths.
		engine := resolveCellEngine(opts.engine(), futureSimCellCoord(
			opts.Machine.Processors, R, opts.AppScale, opts.Seed,
			mix.Number, products[prodIdx], cols[col]))
		r, err := runCell(engine, sched.Config{
			Machine: scaled[prodIdx],
			Policy:  pol,
			Apps:    opts.apps(mix, seed),
			Seed:    seed,
		})
		if err != nil {
			return fmt.Errorf("experiments: product %v policy %s: %w", products[prodIdx], cols[col], err)
		}
		rts[idx] = r.MeanResponse()
		simStats[idx] = r.Stats
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		parallel.Fold(simStats, func(idx int, s obs.SimStats) {
			opts.Stats.Add(cols[idx/R%len(cols)], s)
		})
	}

	var out []FutureSimPoint
	for prodIdx, prod := range products {
		mean := func(col int) float64 {
			base := (prodIdx*len(cols) + col) * R
			var m float64
			for rep := 0; rep < R; rep++ {
				m += rts[base+rep] / float64(R)
			}
			return m
		}
		pt := FutureSimPoint{Product: prod, SimRel: make(map[string]float64)}
		base := mean(0)
		for pi, pol := range policies {
			pt.SimRel[pol] = mean(pi+1) / base
		}
		out = append(out, pt)
	}
	return out, nil
}

// futureSimMachine scales the base machine to one speed*cache product
// point of the Figure 8-13 axis: processor speed grows by √product and
// the cache by the nearest integer multiple of √product (floor 1).
func futureSimMachine(base machine.Config, product float64) (machine.Config, error) {
	if product < 1 {
		return machine.Config{}, fmt.Errorf("experiments: product %v below 1", product)
	}
	factor := math.Sqrt(product)
	cacheScale := int(factor + 0.5)
	if cacheScale < 1 {
		cacheScale = 1
	}
	return base.Scaled(factor, cacheScale)
}

// FutureSimTable renders the simulated-future comparison against the
// analytic model's predictions for the same products.
func FutureSimTable(points []FutureSimPoint, modelRel map[string][]float64, policies []string) report.Table {
	t := report.Table{
		Title:   "Future machines: simulated relative RT vs analytic model",
		Headers: []string{"product"},
	}
	for _, p := range policies {
		t.Headers = append(t.Headers, p+" (sim)", p+" (model)")
	}
	for i, pt := range points {
		row := []string{report.F(pt.Product, 0)}
		for _, p := range policies {
			row = append(row, report.F(pt.SimRel[p], 3))
			if ys, ok := modelRel[p]; ok && i < len(ys) {
				row = append(row, report.F(ys[i], 3))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
