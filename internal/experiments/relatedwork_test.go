package experiments

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestRelatedWorkShape(t *testing.T) {
	opts := FastOptions()
	r, err := RelatedWork(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]RelatedWorkRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
		if row.MeanRT <= 0 {
			t.Errorf("%s: non-positive mean RT", row.Policy)
		}
	}
	// Affinity lifts %affinity in both domains.
	if byName["TimeShare-Aff"].PctAffinity <= byName["TimeShare-RR"].PctAffinity {
		t.Errorf("TS affinity %%: %v <= %v",
			byName["TimeShare-Aff"].PctAffinity, byName["TimeShare-RR"].PctAffinity)
	}
	// The Section-8 claim, at the mechanism level: affinity eliminates a
	// substantial fraction of time sharing's miss stalls (its reallocation
	// rate is high and every quantum expiry is involuntary). The
	// response-time gains themselves are small in both domains on
	// current-technology machines, so they are reported but not asserted.
	if r.TimeSharingMissGain < 0.15 {
		t.Errorf("time-sharing miss-stall gain %.4f, want substantial", r.TimeSharingMissGain)
	}
	// And affinity cuts miss stalls under time sharing.
	if byName["TimeShare-Aff"].MissSec >= byName["TimeShare-RR"].MissSec {
		t.Errorf("TS-Aff miss stall %v not below TS-RR %v",
			byName["TimeShare-Aff"].MissSec, byName["TimeShare-RR"].MissSec)
	}
	var b strings.Builder
	tbl := RelatedWorkTable(r)
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "TimeShare-Aff") {
		t.Error("table missing policy row")
	}
}

func TestMPLSweep(t *testing.T) {
	opts := FastOptions()
	opts.Replications = 1
	policies := []string{"Equipartition", "Dyn-Aff"}
	pts, err := MPLSweep(opts, 3, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		for _, p := range policies {
			if pt.MeanRT[p] <= 0 {
				t.Errorf("k=%d %s: non-positive RT", pt.Jobs, p)
			}
		}
	}
	// Response time grows with multiprogramming level.
	if pts[2].MeanRT["Dyn-Aff"] <= pts[0].MeanRT["Dyn-Aff"] {
		t.Errorf("RT did not grow with MPL: %v vs %v",
			pts[2].MeanRT["Dyn-Aff"], pts[0].MeanRT["Dyn-Aff"])
	}
	// At k=1 the policies coincide (a lone job owns the machine).
	solo := pts[0]
	ratio := solo.MeanRT["Dyn-Aff"] / solo.MeanRT["Equipartition"]
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("single-job policies diverge: ratio %.3f", ratio)
	}
	var b strings.Builder
	mt := MPLTable(pts, policies)
	if err := mt.Write(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := MPLSweep(opts, 0, policies); err == nil {
		t.Error("maxJobs 0 accepted")
	}
}

func TestOpenArrivals(t *testing.T) {
	opts := FastOptions()
	opts.Replications = 1
	rts, err := OpenArrivals(opts, 2*simtime.Second, 4, []string{"Equipartition", "Dyn-Aff"})
	if err != nil {
		t.Fatal(err)
	}
	for pol, rt := range rts {
		if rt <= 0 {
			t.Errorf("%s: non-positive RT", pol)
		}
	}
	if _, err := OpenArrivals(opts, 0, 4, []string{"Dyn-Aff"}); err == nil {
		t.Error("zero interarrival accepted")
	}
	if _, err := OpenArrivals(opts, simtime.Second, 0, []string{"Dyn-Aff"}); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, err := OpenArrivals(opts, simtime.Second, 2, []string{"bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestPoissonArrivals(t *testing.T) {
	a := poissonArrivals(10, simtime.Second, 3)
	b := poissonArrivals(10, simtime.Second, 3)
	if len(a) != 10 || a[0] != 0 {
		t.Fatalf("arrivals = %v", a)
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("arrivals not monotone")
		}
		if a[i] != b[i] {
			t.Fatal("arrivals not deterministic")
		}
	}
	c := poissonArrivals(10, simtime.Second, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical arrivals")
	}
}
