package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/parallel"
	"repro/internal/report"
)

// TestCellMergeMatchesMonolithic is the tentpole contract: for every
// registered kind, splitting the campaign into cells, executing them in
// reversed order (on 1 and on 8 workers), and merging the canonical-JSON
// partials reproduces the monolithic Campaign.Run bytes exactly.
func TestCellMergeMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	cases := []struct {
		kind string
		p    CampaignParams
	}{
		{"characterize", CampaignParams{Fast: true, Replications: 1}},
		{"table1", CampaignParams{Fast: true, BudgetSec: 0.5}},
		{"compare", CampaignParams{Fast: true, Replications: 1, Mix: 5, Policies: []string{"Equipartition", "Dyn-Aff"}}},
		{"future", CampaignParams{Fast: true, Replications: 1, BudgetSec: 0.5, Policies: []string{"Dynamic"}}},
		{"futuresim", CampaignParams{Fast: true, Replications: 1, Mix: 5, Policies: []string{"Dynamic"}, Products: []float64{1, 4}}},
		{"relatedwork", CampaignParams{Fast: true, Replications: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.kind, func(t *testing.T) {
			t.Parallel()
			c, ok := CampaignByKind(tc.kind)
			if !ok {
				t.Fatalf("unknown kind %q", tc.kind)
			}
			mono, err := c.Run(context.Background(), tc.p)
			if err != nil {
				t.Fatal(err)
			}
			monoJSON, err := report.CanonicalJSON(mono)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				p := tc.p
				p.Workers = workers
				plan, err := Cells(tc.kind, p)
				if err != nil {
					t.Fatal(err)
				}
				if len(plan.Cells) == 0 {
					t.Fatal("empty cell plan")
				}
				for _, cell := range plan.Cells {
					if cell.ID == "" || cell.KeyKind == "" || len(cell.KeyParams) == 0 {
						t.Fatalf("cell missing identity: %+v", cell)
					}
				}
				// Execute the cells back to front, fanned out over the worker
				// pool, to prove the partials carry no positional state.
				n := len(plan.Cells)
				partials := make([][]byte, n)
				err = parallel.ForEach(context.Background(), workers, n, func(ctx context.Context, i int) error {
					cell := &plan.Cells[n-1-i]
					res, err := cell.Run(ctx)
					if err != nil {
						return err
					}
					b, err := report.CanonicalJSON(res)
					if err != nil {
						return err
					}
					partials[n-1-i] = b
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				merged, err := plan.Merge(context.Background(), partials)
				if err != nil {
					t.Fatal(err)
				}
				mergedJSON, err := report.CanonicalJSON(merged)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(monoJSON, mergedJSON) {
					t.Errorf("workers=%d: merged bytes differ from monolithic\nmono:   %.200s\nmerged: %.200s",
						workers, monoJSON, mergedJSON)
				}
			}
		})
	}
}

// TestFutureCellKeysSharedWithStandalone checks that the future kind's
// cells carry exactly the cache identities of the equivalent standalone
// compare and table1 campaigns, so prior runs of either kind (or another
// future run with an overlapping policy list) seed its cache entries.
// Plan construction runs no simulations, so this is cheap.
func TestFutureCellKeysSharedWithStandalone(t *testing.T) {
	future, err := Cells("future", CampaignParams{Fast: true, Replications: 1, BudgetSec: 0.5, Policies: []string{"Dynamic"}})
	if err != nil {
		t.Fatal(err)
	}
	compare, err := Cells("compare", CampaignParams{Fast: true, Replications: 1, Policies: []string{"Equipartition", "Dynamic"}})
	if err != nil {
		t.Fatal(err)
	}
	table1, err := Cells("table1", CampaignParams{Fast: true, BudgetSec: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Cell(nil), compare.Cells...), table1.Cells...)
	if len(future.Cells) != len(want) {
		t.Fatalf("future plan has %d cells, want %d (compare %d + table1 %d)",
			len(future.Cells), len(want), len(compare.Cells), len(table1.Cells))
	}
	for i, cell := range future.Cells {
		if cell.KeyKind != want[i].KeyKind || !bytes.Equal(cell.KeyParams, want[i].KeyParams) {
			t.Errorf("cell %d (%s): key %s %s, want %s %s",
				i, cell.ID, cell.KeyKind, cell.KeyParams, want[i].KeyKind, want[i].KeyParams)
		}
	}
}

// TestCellKeysDistinguishParams checks that every parameter that changes
// a cell's bytes forks its cache key, and that Workers does not.
func TestCellKeysDistinguishParams(t *testing.T) {
	base := CampaignParams{Fast: true, Replications: 1, Mix: 5, Policies: []string{"Dynamic"}}
	keyOf := func(p CampaignParams) string {
		plan, err := Cells("compare", p)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Cells[0].KeyKind + "\x00" + string(plan.Cells[0].KeyParams)
	}
	ref := keyOf(base)

	workers := base
	workers.Workers = 8
	if keyOf(workers) != ref {
		t.Error("Workers forked the cell key; results are worker-count invariant")
	}
	for name, mut := range map[string]func(*CampaignParams){
		"seed":  func(p *CampaignParams) { p.Seed = 99 },
		"procs": func(p *CampaignParams) { p.Procs = 8 },
		"reps":  func(p *CampaignParams) { p.Replications = 3 },
	} {
		p := base
		mut(&p)
		if keyOf(p) == ref {
			t.Errorf("%s change did not fork the cell key", name)
		}
	}
}

// TestCellsRejectsBadInput covers the plan-construction error paths.
func TestCellsRejectsBadInput(t *testing.T) {
	if _, err := Cells("nonsense", CampaignParams{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Cells("compare", CampaignParams{Mix: 99}); err == nil {
		t.Error("invalid params accepted")
	}
	plan, err := Cells("relatedwork", CampaignParams{Fast: true, Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Merge(context.Background(), make([][]byte, len(plan.Cells)+1)); err == nil {
		t.Error("partial-count mismatch accepted")
	}
	if _, err := plan.Merge(context.Background(), make([][]byte, len(plan.Cells))); err == nil {
		t.Error("empty partial accepted")
	}
}
