package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/workload"
)

// This file is the differential calibration harness behind the `auto`
// engine tier: it runs a pinned grid of campaign cells through both the
// discrete-event simulator and the analytic estimator, records per-metric
// relative errors, and promotes the cells whose mean response-time error
// meets the strict threshold. `analyticcalib -write` persists the result
// as internal/analytic/promotion.json — the envelope `auto` trusts —
// and `analyticcalib -check` (wired into `make analytic-smoke`) re-runs
// the grid and fails if any promoted cell has drifted past the looser
// tolerance bound.

// Calibration pin: the fast test scale every calibrated coordinate uses.
// Changing any of these invalidates the checked-in golden — every Coord
// string changes — so `auto` degrades safely to the simulator everywhere
// until the golden is regenerated.
const (
	calibrationProcs    = 16
	calibrationReps     = 2
	calibrationAppScale = 4
	calibrationSeed     = 1
)

// calibrationMetrics are the per-cell metrics the harness records, each a
// replication mean over the cell's runs. Promotion is decided on
// analytic.PromotionMetric alone; the rest are recorded for the error
// table in EXPERIMENTS.md and for drift forensics.
var calibrationMetrics = []string{"mean_rt_sec", "reallocations", "miss_sec", "switch_sec"}

// CalibrationGrid returns the pinned calibration cells with empty metric
// maps: the full compare grid (every mix crossed with the five Figure-5
// policies) plus the futuresim grid (mix 5 over the default product axis,
// Equipartition joining the dynamic policies as the baseline column) at
// the fast test scale.
func CalibrationGrid() []analytic.CalCell {
	var cells []analytic.CalCell
	for mix := 1; mix <= 6; mix++ {
		for _, pol := range defaultComparePolicies() {
			cells = append(cells, analytic.CalCell{
				Coord: compareCellCoord(calibrationProcs, calibrationReps,
					calibrationAppScale, calibrationSeed, mix, pol),
				Kind:     "compare",
				Procs:    calibrationProcs,
				Reps:     calibrationReps,
				AppScale: calibrationAppScale,
				Seed:     calibrationSeed,
				Mix:      mix,
				Policy:   pol,
			})
		}
	}
	for _, prod := range []float64{1, 16, 64, 256, 1024} {
		for _, pol := range append([]string{"Equipartition"}, defaultDynamicPolicies()...) {
			cells = append(cells, analytic.CalCell{
				Coord: futureSimCellCoord(calibrationProcs, calibrationReps,
					calibrationAppScale, calibrationSeed, 5, prod, pol),
				Kind:     "futuresim",
				Procs:    calibrationProcs,
				Reps:     calibrationReps,
				AppScale: calibrationAppScale,
				Seed:     calibrationSeed,
				Mix:      5,
				Product:  prod,
				Policy:   pol,
			})
		}
	}
	return cells
}

// calibrationConfigs rebuilds one calibration cell's per-replication
// simulation configs from its structured fields, reproducing exactly the
// configs the campaign drivers build for the same coordinate: compare
// cells seed by (root, mix, rep), futuresim cells by (root, rep), and
// futuresim cells run on the product-scaled machine.
func calibrationConfigs(cell analytic.CalCell) ([]sched.Config, error) {
	opts := DefaultOptions()
	opts.Machine.Processors = cell.Procs
	opts.Replications = cell.Reps
	opts.AppScale = cell.AppScale
	opts.Seed = cell.Seed
	mix, err := workload.MixByNumber(cell.Mix)
	if err != nil {
		return nil, err
	}
	mc := opts.Machine
	if cell.Kind == "futuresim" {
		if mc, err = futureSimMachine(opts.Machine, cell.Product); err != nil {
			return nil, err
		}
	}
	cfgs := make([]sched.Config, cell.Reps)
	for rep := 0; rep < cell.Reps; rep++ {
		var seed uint64
		switch cell.Kind {
		case "compare":
			seed = parallel.CellSeed(cell.Seed, uint64(cell.Mix), uint64(rep))
		case "futuresim":
			seed = parallel.CellSeed(cell.Seed, uint64(rep))
		default:
			return nil, fmt.Errorf("experiments: calibration cell kind %q unknown", cell.Kind)
		}
		pol, ok := core.ByName(cell.Policy)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown policy %q", cell.Policy)
		}
		cfgs[rep] = sched.Config{
			Machine: mc,
			Policy:  pol,
			Apps:    opts.apps(mix, seed),
			Seed:    seed,
		}
	}
	return cfgs, nil
}

// cellEngineMetrics runs one calibration cell's replications on the given
// engine tier and aggregates its metric map: mean_rt_sec averages over
// every (job, replication) response time; the remaining metrics are
// per-replication sums over jobs, averaged across replications.
func cellEngineMetrics(ctx context.Context, engine string, cell analytic.CalCell) (map[string]float64, error) {
	cfgs, err := calibrationConfigs(cell)
	if err != nil {
		return nil, err
	}
	var rt, realloc, miss, sw, jobs float64
	for _, cfg := range cfgs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := runCell(engine, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: calibrate %s (%s): %w", cell.Coord, engine, err)
		}
		for _, j := range res.Jobs {
			rt += j.ResponseTime.SecondsF()
			realloc += float64(j.Reallocations)
			miss += j.MissTime.SecondsF()
			sw += j.SwitchTime.SecondsF()
		}
		jobs += float64(len(res.Jobs))
	}
	n := float64(len(cfgs))
	return map[string]float64{
		"mean_rt_sec":   rt / jobs,
		"reallocations": realloc / n,
		"miss_sec":      miss / n,
		"switch_sec":    sw / n,
	}, nil
}

// AnalyticCellMetrics re-runs only the analytic side of one calibration
// cell — cheap enough for unit tests, which compare it against the sim
// values recorded in the checked-in golden instead of re-simulating.
func AnalyticCellMetrics(ctx context.Context, cell analytic.CalCell) (map[string]float64, error) {
	return cellEngineMetrics(ctx, EngineAnalytic, cell)
}

// calibrationRelErr is the relative error |analytic−sim| / max(|sim|, ε):
// finite everywhere, zero only on exact agreement.
func calibrationRelErr(sim, ana float64) float64 {
	if sim == ana {
		return 0
	}
	return math.Abs(ana-sim) / math.Max(math.Abs(sim), 1e-12)
}

// Calibration is the output of one full differential pass.
type Calibration struct {
	// Table is the promotion golden: every calibrated cell with both
	// engines' metric values, relative errors, and the promotion verdict.
	Table analytic.PromotionTable
	// SimSeconds and AnalyticSeconds total the wall-clock each engine
	// spent across all cells — the measured speedup, informational only
	// (never part of the golden; the metric values are deterministic,
	// timings are not).
	SimSeconds      float64
	AnalyticSeconds float64
}

// Calibrate runs the pinned grid on both engines, workers cells at a time
// (0 = all CPUs), and assembles the promotion table: a cell is promoted
// when its analytic mean response time is within
// analytic.DefaultPromoteRelErr of the simulator's.
func Calibrate(ctx context.Context, workers int) (*Calibration, error) {
	cells := CalibrationGrid()
	simNs := make([]int64, len(cells))
	anaNs := make([]int64, len(cells))
	err := parallel.ForEach(ctx, workers, len(cells), func(ctx context.Context, i int) error {
		start := time.Now()
		simM, err := cellEngineMetrics(ctx, EngineSim, cells[i])
		if err != nil {
			return err
		}
		simNs[i] = time.Since(start).Nanoseconds()
		start = time.Now()
		anaM, err := cellEngineMetrics(ctx, EngineAnalytic, cells[i])
		if err != nil {
			return err
		}
		anaNs[i] = time.Since(start).Nanoseconds()
		cells[i].Metrics = make(map[string]analytic.MetricPair, len(calibrationMetrics))
		for _, name := range calibrationMetrics {
			cells[i].Metrics[name] = analytic.MetricPair{
				Sim:      simM[name],
				Analytic: anaM[name],
				RelErr:   calibrationRelErr(simM[name], anaM[name]),
			}
		}
		cells[i].Promoted = cells[i].Metrics[analytic.PromotionMetric].RelErr <= analytic.DefaultPromoteRelErr
		return nil
	})
	if err != nil {
		return nil, err
	}
	cal := &Calibration{Table: analytic.PromotionTable{
		PromoteRelErr: analytic.DefaultPromoteRelErr,
		TolRelErr:     analytic.DefaultTolRelErr,
		Cells:         cells,
	}}
	for i := range cells {
		cal.SimSeconds += float64(simNs[i]) / 1e9
		cal.AnalyticSeconds += float64(anaNs[i]) / 1e9
	}
	return cal, nil
}
