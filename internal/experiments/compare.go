package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CompareResult holds the replication-averaged outcomes of scheduling the
// given mixes under the given policies — the data behind Figures 5–6 and
// Tables 3–4.
type CompareResult struct {
	Opts     Options
	Mixes    []workload.Mix
	Policies []string
	// Summaries[mixNumber][policy][jobIndex]
	Summaries map[int]map[string][]JobSummary
}

// ComparePolicies schedules every mix under every policy, replicated with
// distinct seeds, and aggregates per-job metrics. It is ComparePoliciesCtx
// without cancellation.
func ComparePolicies(opts Options, mixes []workload.Mix, policies []string) (*CompareResult, error) {
	return ComparePoliciesCtx(context.Background(), opts, mixes, policies)
}

// ComparePoliciesCtx runs the comparison campaign, fanning the individual
// (mix, policy, replication) simulation cells out over opts.Workers worker
// goroutines. Each cell's seed is parallel.CellSeed(opts.Seed, mix number,
// replication) — a pure function of the cell's grid coordinates — and
// results are merged in grid order after all cells finish, so the output is
// bitwise identical for every worker count. The seed deliberately excludes
// the policy index: replication r observes the same workload under every
// policy (common random numbers), which keeps relative response times
// low-variance. On error the campaign is cancelled and the error of the
// lowest-numbered failing cell is returned, matching what a sequential loop
// would have reported. ctx cancellation aborts outstanding cells.
func ComparePoliciesCtx(ctx context.Context, opts Options, mixes []workload.Mix, policies []string) (*CompareResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(mixes) == 0 || len(policies) == 0 {
		return nil, fmt.Errorf("experiments: need at least one mix and one policy")
	}
	// Fail fast on bad inputs before spinning up workers: every mix must be
	// valid and every policy name constructible. Policies themselves are
	// built per cell inside the workers — policy values carry per-run state
	// and must never be shared across goroutines.
	for _, mix := range mixes {
		if err := mix.Validate(); err != nil {
			return nil, err
		}
	}
	for _, polName := range policies {
		if _, ok := core.ByName(polName); !ok {
			return nil, fmt.Errorf("experiments: unknown policy %q", polName)
		}
	}

	// One slot per (mix, policy, replication) cell, merged in index order
	// below. idx = (mi*len(policies) + pi)*R + rep.
	R := opts.Replications
	runs := make([]sched.Result, len(mixes)*len(policies)*R)
	err := parallel.ForEach(ctx, opts.Workers, len(runs), func(ctx context.Context, idx int) error {
		rep := idx % R
		pi := idx / R % len(policies)
		mi := idx / R / len(policies)
		mix, polName := mixes[mi], policies[pi]
		seed := parallel.CellSeed(opts.Seed, uint64(mix.Number), uint64(rep))
		pol, ok := core.ByName(polName)
		if !ok {
			return fmt.Errorf("experiments: unknown policy %q", polName)
		}
		// Resolve the engine tier from the cell's canonical coordinate —
		// the same resolution the cell planner performs, so the monolithic
		// and cell-sharded paths agree bit for bit under engine=auto.
		engine := resolveCellEngine(opts.engine(), compareCellCoord(
			opts.Machine.Processors, R, opts.AppScale, opts.Seed, mix.Number, polName))
		res, err := runCell(engine, sched.Config{
			Machine: opts.Machine,
			Policy:  pol,
			Apps:    opts.apps(mix, seed),
			Seed:    seed,
		})
		if err != nil {
			return fmt.Errorf("experiments: mix #%d policy %s: %w", mix.Number, polName, err)
		}
		runs[idx] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Fold per-run simulation stats in grid order (never inside the
	// workers), keyed by policy, so the collector's totals are identical
	// at every worker count.
	if opts.Stats != nil {
		parallel.Fold(runs, func(idx int, res sched.Result) {
			opts.Stats.Add(policies[idx/R%len(policies)], res.Stats)
		})
	}

	cr := &CompareResult{
		Opts:      opts,
		Mixes:     mixes,
		Policies:  policies,
		Summaries: make(map[int]map[string][]JobSummary),
	}
	for mi, mix := range mixes {
		cr.Summaries[mix.Number] = make(map[string][]JobSummary)
		for pi, polName := range policies {
			base := (mi*len(policies) + pi) * R
			cr.Summaries[mix.Number][polName] = summarize(runs[base:base+R], R)
		}
	}
	return cr, nil
}

// summarize aggregates one cell's replications, in replication order.
func summarize(runs []sched.Result, reps int) []JobSummary {
	var sums []JobSummary
	for _, res := range runs {
		if sums == nil {
			sums = make([]JobSummary, len(res.Jobs))
			for i := range sums {
				sums[i] = JobSummary{App: res.Jobs[i].App, RT: &stats.Sample{}}
			}
		}
		for i, j := range res.Jobs {
			s := &sums[i]
			s.RT.Add(j.ResponseTime.SecondsF())
			n := float64(reps)
			s.WorkSec += j.Work.SecondsF() / n
			s.WasteSec += j.Waste.SecondsF() / n
			s.MissSec += j.MissTime.SecondsF() / n
			s.SwitchSec += j.SwitchTime.SecondsF() / n
			s.AvgAlloc += j.AvgAlloc / n
			s.Reallocations += float64(j.Reallocations) / n
			s.PctAffinity += j.PctAffinity() / n
			s.IntervalMs += j.ReallocInterval().Millis() / n
		}
	}
	return sums
}

// Relative returns each job's mean response time under policy divided by
// its mean response time under baseline, for one mix.
func (cr *CompareResult) Relative(mixNumber int, policy, baseline string) ([]float64, error) {
	mix, ok := cr.Summaries[mixNumber]
	if !ok {
		return nil, fmt.Errorf("experiments: no mix #%d", mixNumber)
	}
	ps, ok := mix[policy]
	if !ok {
		return nil, fmt.Errorf("experiments: mix #%d has no policy %q", mixNumber, policy)
	}
	bs, ok := mix[baseline]
	if !ok {
		return nil, fmt.Errorf("experiments: mix #%d has no baseline %q", mixNumber, baseline)
	}
	out := make([]float64, len(ps))
	for i := range ps {
		out[i] = stats.Ratio(ps[i].MeanRT(), bs[i].MeanRT())
	}
	return out, nil
}

// Figure5Report renders response times of the dynamic policies relative to
// Equipartition for every job in every mix (the paper's Figure 5; with
// Dyn-Aff-NoPri in the policy list it also covers Figure 6).
func (cr *CompareResult) Figure5Report(policies []string) (report.Table, error) {
	t := report.Table{
		Title:   "Figure 5 — response times relative to Equipartition",
		Headers: []string{"mix", "job"},
	}
	t.Headers = append(t.Headers, policies...)
	for _, mix := range cr.Mixes {
		rel := make(map[string][]float64)
		for _, p := range policies {
			r, err := cr.Relative(mix.Number, p, "Equipartition")
			if err != nil {
				return report.Table{}, err
			}
			rel[p] = r
		}
		jobs := cr.Summaries[mix.Number][policies[0]]
		for i, js := range jobs {
			row := []string{fmt.Sprintf("#%d", mix.Number), fmt.Sprintf("%s-%d", js.App, i)}
			for _, p := range policies {
				row = append(row, report.F(rel[p][i], 3))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Table3Report renders the affinity-influence table for one mix (the
// paper's Table 3 uses mix #5): %affinity, #reallocations, reallocation
// interval, and response time per job under each policy.
func (cr *CompareResult) Table3Report(mixNumber int, policies []string) (report.Table, error) {
	mix, ok := cr.Summaries[mixNumber]
	if !ok {
		return report.Table{}, fmt.Errorf("experiments: no mix #%d", mixNumber)
	}
	t := report.Table{
		Title:   fmt.Sprintf("Table 3 — influence of affinity on scheduling (mix #%d)", mixNumber),
		Headers: []string{"metric"},
	}
	for _, p := range policies {
		sums, ok := mix[p]
		if !ok {
			return report.Table{}, fmt.Errorf("experiments: mix #%d has no policy %q", mixNumber, p)
		}
		for i, js := range sums {
			t.Headers = append(t.Headers, fmt.Sprintf("%s %s-%d", p, js.App, i))
		}
	}
	addRow := func(name string, get func(JobSummary) string) {
		row := []string{name}
		for _, p := range policies {
			for _, js := range mix[p] {
				row = append(row, get(js))
			}
		}
		t.AddRow(row...)
	}
	addRow("%affinity", func(js JobSummary) string { return report.Pct(js.PctAffinity) })
	addRow("#reallocations", func(js JobSummary) string { return report.F(js.Reallocations, 0) })
	addRow("realloc interval (ms)", func(js JobSummary) string { return report.F(js.IntervalMs, 0) })
	addRow("response time (s)", func(js JobSummary) string { return report.F(js.MeanRT(), 1) })
	return t, nil
}

// Table4Report renders the average job response times of the homogeneous
// mixes under two policies (the paper's Table 4: Dyn-Aff vs Dyn-Aff-NoPri
// on mixes 1 and 4).
func (cr *CompareResult) Table4Report(mixNumbers []int, policyA, policyB string) (report.Table, error) {
	t := report.Table{
		Title:   "Table 4 — average job response time, homogeneous workloads (s)",
		Headers: []string{"workload", policyA, policyB},
	}
	for _, n := range mixNumbers {
		mix, ok := cr.Summaries[n]
		if !ok {
			return report.Table{}, fmt.Errorf("experiments: no mix #%d", n)
		}
		mean := func(policy string) (float64, error) {
			sums, ok := mix[policy]
			if !ok {
				return 0, fmt.Errorf("experiments: mix #%d has no policy %q", n, policy)
			}
			total := 0.0
			for _, js := range sums {
				total += js.MeanRT()
			}
			return total / float64(len(sums)), nil
		}
		a, err := mean(policyA)
		if err != nil {
			return report.Table{}, err
		}
		b, err := mean(policyB)
		if err != nil {
			return report.Table{}, err
		}
		var name string
		for _, m := range cr.Mixes {
			if m.Number == n {
				name = m.String()
			}
		}
		t.AddRow(name, report.F(a, 2), report.F(b, 2))
	}
	return t, nil
}
